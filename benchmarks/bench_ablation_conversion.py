"""Ablation: researching vs. transactional demand (Section 4.3.2).

The paper explains its "counter-intuitive" decreasing value-add with a
popularity-increasing conversion rate: the logs measure *researching*
demand, while reviews track *transactions*.  This ablation applies the
conversion model and confirms the mechanism: VA computed on
transactional demand moves toward the naive y = 1 proportionality line,
while VA on researching demand keeps the paper's decreasing shape.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.valueadd import value_add_curve
from repro.pipeline.experiments import build_traffic_dataset
from repro.traffic.conversion import ConversionModel


@pytest.fixture(scope="module")
def dataset(config):
    return build_traffic_dataset("amazon", config)


def test_ablation_conversion_model(benchmark, dataset):
    model = ConversionModel(base_rate=0.01, max_rate=0.25, popularity_exponent=0.5)
    transactions = benchmark(model.expected_transactions, dataset.search_demand)
    assert transactions.sum() < dataset.search_demand.sum()


def test_ablation_conversion_emit(benchmark, dataset):
    model = ConversionModel(base_rate=0.01, max_rate=0.25, popularity_exponent=0.5)

    def curves():
        researching = value_add_curve(dataset.search_demand, dataset.reviews)
        transactional = value_add_curve(
            model.expected_transactions(dataset.search_demand), dataset.reviews
        )
        return researching, transactional

    researching, transactional = benchmark.pedantic(curves, rounds=1, iterations=1)
    emit(
        "ablation_conversion",
        {
            "researching demand": (
                researching.review_counts,
                researching.relative_value_add,
            ),
            "transactional demand": (
                transactional.review_counts,
                transactional.relative_value_add,
            ),
        },
        title="Ablation: VA(n)/VA(0) under researching vs transactional demand",
        log_x=True,
        x_label="# of reviews",
        y_label="relative value-add",
    )
    # transactional demand closes the gap toward proportionality
    shared = min(
        len(researching.relative_value_add), len(transactional.relative_value_add)
    )
    gap_researching = np.abs(1.0 - researching.relative_value_add[1:shared])
    gap_transactional = np.abs(1.0 - transactional.relative_value_add[1:shared])
    assert gap_transactional.mean() < gap_researching.mean()
