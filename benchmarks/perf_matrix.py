"""The PR's acceptance benchmark: the (workers × cache) run matrix.

Runs ``run_everything`` in four modes —

- ``serial-nocache``: the pre-perf baseline (1 worker, no cache);
- ``serial-cold`` / ``serial-warm``: 1 worker against an empty / warm
  artifact cache;
- ``parallel-cold`` / ``parallel-warm``: N workers (default 4) ditto —

checks every artifact is byte-identical across all of them, and writes
one JSON report (wall-clock per mode and per task, cache hit rates,
speedups, machine facts).  ``make bench-json`` writes ``BENCH_PR2.json``
at the repo root.

Usage::

    python benchmarks/perf_matrix.py --out BENCH_PR2.json
    python benchmarks/perf_matrix.py --scale tiny --quick-traffic
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.io import atomic_write_text  # noqa: E402
from repro.pipeline.config import ExecutionSettings, ExperimentConfig  # noqa: E402
from repro.pipeline.runall import run_everything_with_report  # noqa: E402


def artifact_digests(directory: Path) -> dict[str, str]:
    """sha256 of every artifact file, keyed by file name."""
    return {
        path.name: hashlib.sha256(path.read_bytes()).hexdigest()
        for path in sorted(directory.iterdir())
        if path.is_file()
    }


def run_mode(
    name: str,
    config: ExperimentConfig,
    settings: ExecutionSettings,
    out_dir: Path,
) -> tuple[dict, dict[str, str]]:
    """One matrix cell: run, digest, and summarize."""
    print(f"[{name}] workers={settings.workers} cache={settings.use_cache}")
    written, report = run_everything_with_report(
        out_dir, config, verbose=False, settings=settings
    )
    digests = artifact_digests(out_dir)
    summary = {
        "name": name,
        "workers_requested": settings.workers,
        "workers_used": report.workers,
        "cache_enabled": settings.use_cache,
        "seconds": round(report.total_seconds, 3),
        "artifacts": len(written),
        "cache": report.cache.as_dict(),
        "timings": [t.as_dict() for t in sorted(report.timings, key=lambda t: t.name)],
    }
    print(
        f"[{name}] {report.total_seconds:.2f}s, "
        f"hit rate {report.cache.hit_rate:.0%}"
    )
    return summary, digests


def main(argv: list[str] | None = None) -> int:
    """Run the matrix; returns non-zero if outputs diverge."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("BENCH_PR2.json"))
    parser.add_argument("--scale", default="small")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--quick-traffic",
        action="store_true",
        help="shrink the traffic simulation (for smoke runs)",
    )
    args = parser.parse_args(argv)

    config = ExperimentConfig(
        scale=args.scale,
        seed=args.seed,
        traffic_entities=20000,
        traffic_events=200000,
        traffic_cookies=50000,
    )
    if args.quick_traffic:
        config = config.scaled_down(10)

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        tmp_path = Path(tmp)
        cache_serial = str(tmp_path / "cache-serial")
        cache_parallel = str(tmp_path / "cache-parallel")
        modes = [
            ("serial-nocache", ExecutionSettings()),
            (
                "serial-cold",
                ExecutionSettings(workers=1, use_cache=True, cache_dir=cache_serial),
            ),
            (
                "serial-warm",
                ExecutionSettings(workers=1, use_cache=True, cache_dir=cache_serial),
            ),
            (
                "parallel-cold",
                ExecutionSettings(
                    workers=args.workers, use_cache=True, cache_dir=cache_parallel
                ),
            ),
            (
                "parallel-warm",
                ExecutionSettings(
                    workers=args.workers, use_cache=True, cache_dir=cache_parallel
                ),
            ),
        ]
        summaries = []
        digests_by_mode = {}
        for name, settings in modes:
            summary, digests = run_mode(
                name, config, settings, tmp_path / f"out-{name}"
            )
            summaries.append(summary)
            digests_by_mode[name] = digests

    baseline = digests_by_mode["serial-nocache"]
    identical = all(digests == baseline for digests in digests_by_mode.values())
    seconds = {s["name"]: s["seconds"] for s in summaries}

    def speedup(mode: str) -> float:
        return round(seconds["serial-nocache"] / max(seconds[mode], 1e-9), 2)

    payload = {
        "benchmark": "run_everything workers × cache matrix",
        "config": {
            "scale": config.scale,
            "seed": config.seed,
            "traffic_entities": config.traffic_entities,
            "traffic_events": config.traffic_events,
            "traffic_cookies": config.traffic_cookies,
        },
        "machine": {"cpu_count": os.cpu_count()},
        "parallel_workers": args.workers,
        "modes": summaries,
        "speedup_vs_serial_nocache": {
            name: speedup(name) for name in seconds if name != "serial-nocache"
        },
        "byte_identical_across_modes": identical,
        "artifact_sha256": baseline,
    }
    atomic_write_text(args.out, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}")
    print(f"byte-identical across modes: {identical}")
    for name in seconds:
        if name != "serial-nocache":
            print(f"  {name:<14} {seconds[name]:>8.2f}s  ({speedup(name)}x)")
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
