"""Figure 2: k-coverage of the homepage attribute, 8 domains."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.coverage import k_coverage_curves, sites_needed_for_coverage
from repro.entities.domains import ATTRIBUTE_HOMEPAGE, LOCAL_BUSINESS_DOMAINS
from repro.pipeline.experiments import run_spread


@pytest.fixture(scope="module")
def restaurant_incidence(config):
    return run_spread("restaurants", ATTRIBUTE_HOMEPAGE, config).incidence


def test_figure2_kcoverage_restaurants(benchmark, restaurant_incidence, config):
    curves = benchmark(k_coverage_curves, restaurant_incidence, config.ks)
    assert curves.final_coverage(1) > 0.9


def test_figure2_sites_needed(benchmark, restaurant_incidence):
    """The paper's headline lookup: sites needed for 95% coverage."""
    needed = benchmark(sites_needed_for_coverage, restaurant_incidence, 0.95)
    assert needed is not None and needed > 50


def test_figure2_all_panels(benchmark, config):
    def all_panels():
        return {
            domain: run_spread(domain, ATTRIBUTE_HOMEPAGE, config)
            for domain in LOCAL_BUSINESS_DOMAINS
        }

    panels = benchmark.pedantic(all_panels, rounds=1, iterations=1)
    for domain, result in panels.items():
        emit(
            f"figure2_{domain}",
            result.series(),
            title=f"Figure 2: {domain} homepages (k-coverage, k=1..10)",
            log_x=True,
            x_label="top-t sites",
            y_label="coverage",
        )
