"""Shared configuration for the benchmark harness.

Every ``bench_*.py`` file regenerates one table or figure of the paper:
the timed section is the *analysis* (coverage, set cover, graph
metrics, demand aggregation), corpus generation happens in fixtures,
and each benchmark writes the figure's data — the same rows/series the
paper reports — to ``benchmarks/output/``.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

import pytest

from repro.pipeline.config import ExperimentConfig
from repro.report.figures import ascii_plot, write_csv

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    """The benchmark scale: small corpora, paper-like traffic sizes."""
    return ExperimentConfig(
        scale="small",
        seed=0,
        traffic_entities=20000,
        traffic_events=300000,
        traffic_cookies=60000,
    )


def emit(
    name: str,
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    title: str,
    log_x: bool = False,
    log_y: bool = False,
    x_label: str = "x",
    y_label: str = "y",
) -> None:
    """Write one figure's series as CSV + ASCII chart and echo a stub."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    write_csv(OUTPUT_DIR / f"{name}.csv", series)
    chart = ascii_plot(
        series,
        log_x=log_x,
        log_y=log_y,
        title=title,
        x_label=x_label,
        y_label=y_label,
    )
    (OUTPUT_DIR / f"{name}.txt").write_text(chart + "\n")
    print(f"\n[{name}] written to benchmarks/output/{name}.csv")
    print(chart)


def emit_text(name: str, text: str) -> None:
    """Write a table artifact."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n[{name}]")
    print(text)
