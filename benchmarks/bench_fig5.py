"""Figure 5: greedy set cover vs. ordering sites by size.

Includes a random-order baseline as an ablation: the paper's point is
that size order is already near-optimal; random order shows how much
worse an uninformed ordering is.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.coverage import k_coverage_curves
from repro.core.setcover import greedy_set_cover
from repro.pipeline.experiments import run_figure5, run_spread


@pytest.fixture(scope="module")
def homepage_incidence(config):
    return run_spread("restaurants", "homepage", config).incidence


def test_figure5_greedy_setcover(benchmark, homepage_incidence):
    order, gains = benchmark(greedy_set_cover, homepage_incidence)
    assert gains.sum() == len(homepage_incidence.mentioned_entities())


def test_figure5_emit_with_random_ablation(benchmark, config, homepage_incidence):
    result = benchmark.pedantic(run_figure5, args=(config,), rounds=1, iterations=1)
    rng = np.random.default_rng(0)
    random_order = rng.permutation(homepage_incidence.n_sites)
    random_curves = k_coverage_curves(
        homepage_incidence,
        ks=(1,),
        checkpoints=result.checkpoints,
        order=random_order,
    )
    series = dict(result.series())
    series["random order (ablation)"] = (
        result.checkpoints,
        random_curves.curve(1),
    )
    emit(
        "figure5",
        series,
        title="Figure 5: Greedy Covering for Restaurant Homepages",
        log_x=True,
        x_label="top-t sites",
        y_label="1-coverage",
    )
    print(f"max greedy improvement over size order: {result.max_improvement():.3f}")
