"""Figure 1: k-coverage of the phone attribute, 8 local-business domains.

The timed section is the k-coverage computation (k = 1..10) over the
restaurants corpus; the full 8-panel figure is written to
``benchmarks/output/figure1.*``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.coverage import k_coverage_curves
from repro.entities.domains import ATTRIBUTE_PHONE, LOCAL_BUSINESS_DOMAINS
from repro.pipeline.experiments import run_spread


@pytest.fixture(scope="module")
def restaurant_incidence(config):
    return run_spread("restaurants", ATTRIBUTE_PHONE, config).incidence


def test_figure1_kcoverage_restaurants(benchmark, restaurant_incidence, config):
    curves = benchmark(k_coverage_curves, restaurant_incidence, config.ks)
    assert curves.final_coverage(1) > 0.95


def test_figure1_all_panels(benchmark, config):
    def all_panels():
        return {
            domain: run_spread(domain, ATTRIBUTE_PHONE, config)
            for domain in LOCAL_BUSINESS_DOMAINS
        }

    panels = benchmark.pedantic(all_panels, rounds=1, iterations=1)
    for domain, result in panels.items():
        emit(
            f"figure1_{domain}",
            result.series(),
            title=f"Figure 1: {domain} phones (k-coverage, k=1..10)",
            log_x=True,
            x_label="top-t sites",
            y_label="coverage",
        )
