"""Figure 6: the long tail of demand (CDF + rank PDF, search & browse)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.demand import DemandCurves
from repro.pipeline.experiments import build_traffic_dataset, run_figure6
from repro.traffic.logs import unique_cookie_demand


@pytest.fixture(scope="module")
def yelp_dataset(config):
    return build_traffic_dataset("yelp", config)


def test_figure6_demand_curves(benchmark, yelp_dataset):
    curves = benchmark(DemandCurves.from_demand, "yelp", yelp_dataset.search_demand)
    assert curves.cumulative_share[-1] == pytest.approx(1.0)


def test_figure6_unique_cookie_aggregation(benchmark, config):
    from repro.traffic.demandmodel import get_site_profile
    from repro.traffic.logs import TrafficLogGenerator

    generator = TrafficLogGenerator(
        get_site_profile("yelp"),
        n_entities=config.traffic_entities,
        n_cookies=config.traffic_cookies,
        seed=1,
    )
    log = generator.search_log(config.traffic_events)
    demand = benchmark(unique_cookie_demand, log)
    assert demand.sum() > 0


def test_figure6_emit(benchmark, config):
    curves = benchmark.pedantic(run_figure6, args=(config,), rounds=1, iterations=1)
    for source in ("search", "browse"):
        cdf_series = {
            site: (c.inventory, c.cumulative_share)
            for site, c in curves[source].items()
        }
        emit(
            f"figure6_cdf_{source}",
            cdf_series,
            title=f"Figure 6: cumulative demand CDF ({source})",
            x_label="normalized inventory",
            y_label="cumulative demand",
        )
        pdf_series = {
            site: (c.ranks, c.rank_share) for site, c in curves[source].items()
        }
        emit(
            f"figure6_pdf_{source}",
            pdf_series,
            title=f"Figure 6: demand share vs rank ({source})",
            log_x=True,
            log_y=True,
            x_label="rank",
            y_label="share of demand",
        )
        shares = {
            site: round(c.share_of_top(0.2), 3)
            for site, c in curves[source].items()
        }
        print(f"{source}: demand share of top-20% inventory: {shares}")
