"""Figure 9: robustness of connectivity after removing the top-k sites."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.graph import robustness_curve
from repro.pipeline.experiments import run_figure9, run_spread


@pytest.fixture(scope="module")
def phone_incidence(config):
    return run_spread("restaurants", "phone", config).incidence


def test_figure9_robustness_single(benchmark, phone_incidence):
    __, fractions = benchmark.pedantic(
        robustness_curve, args=(phone_incidence, 10), rounds=2, iterations=1
    )
    assert fractions[-1] > 0.95


def test_figure9_emit(benchmark, config):
    panels = benchmark.pedantic(
        run_figure9, args=(config,), rounds=1, iterations=1
    )
    for attribute, by_domain in panels.items():
        series = {domain: curve for domain, curve in by_domain.items()}
        emit(
            f"figure9_{attribute}",
            series,
            title=(
                f"Figure 9: fraction in largest component after removing "
                f"top-k sites ({attribute})"
            ),
            x_label="top-k sites removed",
            y_label="fraction in largest component",
        )
