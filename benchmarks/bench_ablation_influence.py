"""Ablation: the I∆ = 1/(1+n) envelope, verified on live aggregation.

Section 4.3.1 *assumes* the (n+1)-th review can shift an average
presentation by at most 1/(1+n) (times the rating span).  Here we run
the actual aggregation over polarity-scored synthetic reviews and
measure realized influences: every one must sit under the envelope and
their mean must track its decay.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.extract.sentiment import RatingAggregate, influence_bound, polarity
from repro.webgen.text import ReviewTextGenerator


@pytest.fixture(scope="module")
def influence_samples():
    generator = ReviewTextGenerator(61)
    max_reviews = 200
    runs = 60
    realized = np.zeros((runs, max_reviews))
    for run in range(runs):
        aggregate = RatingAggregate()
        for n_before in range(max_reviews):
            text = generator.review(f"entity {run}")
            realized[run, n_before] = aggregate.add(polarity(text))
    return realized


def test_influence_aggregation(benchmark):
    generator = ReviewTextGenerator(62)

    def aggregate_stream():
        aggregate = RatingAggregate()
        for i in range(500):
            aggregate.add_review(generator.review(f"e{i}"))
        return aggregate

    aggregate = benchmark.pedantic(aggregate_stream, rounds=2, iterations=1)
    assert aggregate.n_reviews == 500


def test_influence_emit(benchmark, influence_samples):
    realized = influence_samples
    ns = np.arange(realized.shape[1])
    bound = np.array([influence_bound(int(n)) for n in ns])
    mean_realized = benchmark(lambda: realized.mean(axis=0))
    emit(
        "ablation_influence",
        {
            "I-delta envelope 2/(1+n)": (ns + 1, bound),
            "mean realized influence": (ns + 1, mean_realized),
            "max realized influence": (ns + 1, realized.max(axis=0)),
        },
        title="The (n+1)-th review's influence on the mean rating",
        log_x=True,
        log_y=True,
        x_label="existing reviews n (+1)",
        y_label="|mean shift|",
    )
    # every realized influence is under the envelope
    assert np.all(realized <= bound[None, :] + 1e-9)
    # and the mean tracks the decay (within a constant factor)
    late = slice(50, None)
    assert np.all(mean_realized[late] <= bound[late])
    assert mean_realized[100] < mean_realized[10] < mean_realized[1]
