"""Figure 3: spread of book ISBN numbers."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.coverage import k_coverage_curves
from repro.pipeline.experiments import run_figure3


@pytest.fixture(scope="module")
def result(config):
    return run_figure3(config)


def test_figure3_kcoverage(benchmark, result, config):
    curves = benchmark(k_coverage_curves, result.incidence, config.ks)
    assert curves.final_coverage(1) > 0.9


def test_figure3_emit(benchmark, result):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(
        "figure3",
        result.series(),
        title="Figure 3: Spread of Book ISBN Numbers (k=1..10)",
        log_x=True,
        x_label="top-t sites",
        y_label="coverage",
    )
