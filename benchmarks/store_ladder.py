"""The PR's acceptance benchmark: the storage-backend ladder.

Serves one run at the ``ladder`` scale (100k entities — past the
``auto`` RAM threshold) three times, once per storage tier, each in a
**fresh server process** so peak RSS is attributable to the backend
alone.  The store blobs are compiled once up front, so the out-of-core
rungs measure pure open-and-serve cost against a warm artifact cache.

Each rung drives the same seeded closed-loop request mix and records
throughput, latency percentiles, and the server's resident high-water
mark (``VmHWM``).  The report passes when every out-of-core tier holds

- peak RSS at or below ``rss_ratio_max`` (50%) of the RAM tier's, and
- p99 latency within ``p99_ratio_max`` (5x) of the RAM tier's.

``make bench-store`` writes ``BENCH_PR9.json`` at the repo root.

Usage::

    python benchmarks/store_ladder.py --out BENCH_PR9.json
    python benchmarks/store_ladder.py --scale tiny --requests 200
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.io import atomic_write_text  # noqa: E402
from repro.perf import ArtifactCache, configure_cache  # noqa: E402
from repro.perf.rss import rss_high_water_mb  # noqa: E402
from repro.pipeline.config import ExperimentConfig  # noqa: E402
from repro.pipeline.runall import write_manifest  # noqa: E402
from repro.serve.loadgen import (  # noqa: E402
    LoadPlan,
    build_streams,
    run_load,
    stream_digest,
)
from repro.store import Manifest, build_store  # noqa: E402

TIERS = ("ram", "mmap", "sqlite")
RSS_RATIO_MAX = 0.5
P99_RATIO_MAX = 5.0

# Runs in a fresh interpreter per tier: opens the run with one backend,
# prints the bound port as JSON, then serves until killed.
_SERVER_STUB = """
import json, sys
from pathlib import Path
from repro.perf import ArtifactCache, configure_cache
from repro.serve import (
    ServeApp, ServeSettings, build_index, load_manifest, make_server,
)
run, cache, backend = sys.argv[1:4]
configure_cache(ArtifactCache(directory=Path(cache)))
app = ServeApp(
    build_index(load_manifest(Path(run)), backend=backend),
    ServeSettings(port=0, response_cache_entries=0),
)
server = make_server(app)
print(json.dumps({"port": server.server_address[1]}), flush=True)
server.serve_forever()
"""


def write_run(root: Path, config: ExperimentConfig) -> Manifest:
    """A run directory trimmed to one pair and one traffic site."""
    path = write_manifest(root, config, [])
    payload = json.loads(path.read_text())
    payload["spread_pairs"] = [["restaurants", "phone"]]
    payload["traffic_sites"] = ["imdb"]
    path.write_text(json.dumps(payload))
    return Manifest(
        config=config,
        spread_pairs=(("restaurants", "phone"),),
        traffic_sites=("imdb",),
        artifacts=(),
    )


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile over a sorted copy, in milliseconds."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return round(ordered[rank] * 1000.0, 3)


def latency_summary(samples: list[float]) -> dict[str, float]:
    """p50/p95/p99/mean/max in milliseconds."""
    return {
        "p50_ms": percentile(samples, 0.50),
        "p95_ms": percentile(samples, 0.95),
        "p99_ms": percentile(samples, 0.99),
        "mean_ms": round(sum(samples) / len(samples) * 1000.0, 3),
        "max_ms": round(max(samples) * 1000.0, 3),
    }


def spawn_server(run: Path, cache: Path, backend: str) -> tuple[subprocess.Popen, int]:
    """Start a fresh one-tier server process; return (process, port)."""
    env = dict(os.environ)
    root = Path(__file__).resolve().parent.parent
    env["PYTHONPATH"] = str(root / "src")
    process = subprocess.Popen(
        [sys.executable, "-u", "-c", _SERVER_STUB, str(run), str(cache), backend],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    line = process.stdout.readline()
    if not line:
        process.wait(timeout=10)
        raise RuntimeError(f"{backend} server died before binding a port")
    return process, int(json.loads(line)["port"])


def fetch(port: int, path: str) -> dict:
    """One GET against the freshly bound server, parsed as JSON."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        connection.request("GET", path)
        return json.loads(connection.getresponse().read())
    finally:
        connection.close()


def fetch_summary(port: int) -> dict:
    """GET /healthz from the freshly bound server."""
    return fetch(port, "/healthz")


def run_rung(run: Path, cache: Path, backend: str, plan: LoadPlan) -> dict:
    """One ladder rung: fresh server, seeded load, RSS by pid."""
    print(f"[{backend}] starting server...", flush=True)
    started = time.perf_counter()
    process, port = spawn_server(run, cache, backend)
    ready_seconds = time.perf_counter() - started
    try:
        # Set cover scans the whole incidence per call — an analytical
        # batch job, not a point read.  It stays out of the latency
        # race (it would page the entire mmap in and mask the RSS
        # story) but every rung must still answer it correctly once.
        streams = [
            [path for path in stream if not path.startswith("/v1/setcover")]
            for stream in build_streams(fetch_summary(port), plan)
        ]
        print(
            f"[{backend}] port {port}, ready in {ready_seconds:.1f}s, "
            f"stream sha256 {stream_digest(streams)[:12]}",
            flush=True,
        )
        result = run_load("127.0.0.1", port, streams)
        # VmHWM must be read while the server process is still alive,
        # and before the setcover probe (which deliberately pages the
        # whole incidence in and would mask the read-path RSS story).
        rss_mb = rss_high_water_mb(process.pid)
        setcover_body = fetch(port, "/v1/setcover/restaurants?budget=5")
    finally:
        process.terminate()
        process.wait(timeout=10)
    samples = result.all_latencies()
    rung = {
        "backend": backend,
        "ready_seconds": round(ready_seconds, 2),
        "rss_mb": rss_mb,
        "requests": result.total_requests,
        "throughput_rps": round(result.throughput_rps, 1),
        "statuses": result.statuses,
        "setcover_coverage": setcover_body.get("coverage"),
        "latency_ms": latency_summary(samples),
        "per_endpoint": {
            endpoint: latency_summary(latencies)
            for endpoint, latencies in sorted(result.latencies.items())
        },
    }
    print(
        f"[{backend}] rss {rss_mb} MB, p99 {rung['latency_ms']['p99_ms']} ms, "
        f"{rung['throughput_rps']} req/s",
        flush=True,
    )
    return rung


def evaluate(rungs: list[dict]) -> dict:
    """The pass/fail criteria over the finished ladder."""
    by_backend = {rung["backend"]: rung for rung in rungs}
    ram = by_backend["ram"]
    rss_ratios = {}
    p99_ratios = {}
    ok = True
    for backend in ("mmap", "sqlite"):
        rung = by_backend[backend]
        rss_ratios[backend] = round(rung["rss_mb"] / ram["rss_mb"], 3)
        p99_ratios[backend] = round(
            rung["latency_ms"]["p99_ms"] / ram["latency_ms"]["p99_ms"], 3
        )
        ok = ok and rss_ratios[backend] <= RSS_RATIO_MAX
        ok = ok and p99_ratios[backend] <= P99_RATIO_MAX
    for rung in rungs:
        ok = ok and set(rung["statuses"]) == {"200"}
    setcover_agrees = len({rung["setcover_coverage"] for rung in rungs}) == 1
    ok = ok and setcover_agrees
    return {
        "rss_ratio_max": RSS_RATIO_MAX,
        "p99_ratio_max": P99_RATIO_MAX,
        "rss_ratios": rss_ratios,
        "p99_ratios": p99_ratios,
        "setcover_agrees": setcover_agrees,
        "pass": ok,
    }


def main(argv: list[str] | None = None) -> int:
    """Run the ladder and write the JSON report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ladder")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=1500)
    parser.add_argument("--out", type=Path, default=Path("BENCH_PR9.json"))
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="reuse a persistent artifact cache (skips recompiles)",
    )
    args = parser.parse_args(argv)

    config = ExperimentConfig(scale=args.scale, seed=args.seed)
    plan = LoadPlan(seed=args.seed + 7, clients=args.clients, requests=args.requests)
    with tempfile.TemporaryDirectory(prefix="store-ladder-") as tmp:
        run = Path(tmp) / "run"
        run.mkdir()
        cache = args.cache_dir if args.cache_dir else Path(tmp) / "cache"
        manifest = write_run(run, config)
        print(f"compiling store blobs at scale {args.scale}...", flush=True)
        previous = configure_cache(ArtifactCache(directory=cache))
        try:
            started = time.perf_counter()
            store = build_store(manifest)
            compile_seconds = time.perf_counter() - started
        finally:
            configure_cache(previous)
        print(
            f"store [{store.identity[:12]}] compiled in {compile_seconds:.1f}s",
            flush=True,
        )
        rungs = [run_rung(run, cache, backend, plan) for backend in TIERS]

    criteria = evaluate(rungs)
    payload = {
        "benchmark": "repro.store backend ladder",
        "scale": args.scale,
        "seed": args.seed,
        "n_entities": config.scale_preset.n_entities,
        "plan": {"clients": args.clients, "requests": args.requests},
        "store_compile_seconds": round(compile_seconds, 2),
        "rungs": rungs,
        "criteria": criteria,
    }
    atomic_write_text(args.out, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    verdict = "PASS" if criteria["pass"] else "FAIL"
    print(f"{verdict}: report written to {args.out}")
    return 0 if criteria["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
