"""Table 1: the domain/attribute inventory."""

from __future__ import annotations

from benchmarks.conftest import emit_text
from repro.pipeline.experiments import run_table1


def test_table1(benchmark):
    table = benchmark(run_table1)
    emit_text("table1", table)
