"""Figure 7: normalized demand vs. number of existing reviews."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.valueadd import demand_vs_reviews
from repro.pipeline.experiments import build_traffic_dataset, run_figure7


@pytest.fixture(scope="module")
def amazon_dataset(config):
    return build_traffic_dataset("amazon", config)


def test_figure7_grouping(benchmark, amazon_dataset):
    counts, means = benchmark(
        demand_vs_reviews, amazon_dataset.search_demand, amazon_dataset.reviews
    )
    assert means[-1] > means[0]  # demand increases with reviews


def test_figure7_emit(benchmark, config):
    panels = benchmark.pedantic(run_figure7, args=(config,), rounds=1, iterations=1)
    for site, sources in panels.items():
        emit(
            f"figure7_{site}",
            {source: series for source, series in sources.items()},
            title=f"Figure 7: normalized demand vs #reviews ({site})",
            x_label="# of reviews (log2-binned)",
            y_label="avg normalized demand",
        )
