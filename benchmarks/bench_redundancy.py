"""Content-redundancy benchmark (the paper's third conclusion).

Quantifies the redundancy the paper says extraction techniques can
leverage: replication factors, head-site overlap, and marginal-novelty
decay, per (domain, attribute).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, emit_text
from repro.core.redundancy import (
    redundancy_report,
    replication_histogram,
)
from repro.pipeline.experiments import run_spread


@pytest.fixture(scope="module")
def incidences(config):
    pairs = (
        ("restaurants", "phone"),
        ("restaurants", "homepage"),
        ("books", "isbn"),
    )
    return {
        (domain, attribute): run_spread(domain, attribute, config).incidence
        for domain, attribute in pairs
    }


def test_redundancy_report_speed(benchmark, incidences):
    incidence = incidences[("restaurants", "phone")]
    report = benchmark(redundancy_report, incidence)
    assert report.redundancy_coefficient > 10


def test_redundancy_emit(benchmark, incidences):
    def reports():
        return {
            key: redundancy_report(incidence)
            for key, incidence in incidences.items()
        }

    summary = benchmark.pedantic(reports, rounds=1, iterations=1)
    lines = [
        "Content redundancy (small scale):",
        "  domain/attr            edges/entity  singleton%  head-overlap  novelty<10% at rank",
    ]
    for (domain, attribute), report in summary.items():
        lines.append(
            f"  {domain}/{attribute:<12} {report.redundancy_coefficient:12.1f}"
            f"  {100 * report.singleton_fraction:9.1f}%"
            f"  {report.head_overlap_mean:12.2f}"
            f"  {report.novelty_decay_rank:8d}"
        )
    emit_text("redundancy", "\n".join(lines))

    series = {}
    for (domain, attribute), incidence in incidences.items():
        counts, frequency = replication_histogram(incidence, max_count=30)
        series[f"{domain}/{attribute}"] = (counts, frequency)
    emit(
        "redundancy_replication",
        series,
        title="Replication factor distribution (sites per entity)",
        log_x=True,
        x_label="sites mentioning the entity",
        y_label="fraction of entities",
    )
    # phones are redundant; the paper's leverage claim requires > 1
    assert all(
        report.redundancy_coefficient > 1.5 for report in summary.values()
    )
