"""Scaling behavior: generation and analysis cost across presets.

Not a paper artifact — a performance regression guard.  Asserts the
costs that matter stay near-linear in corpus size (edges), so the
``paper`` preset remains reachable.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import emit_text
from repro.core.coverage import k_coverage_curves
from repro.core.graph import GraphMetrics
from repro.webgen.profiles import SCALES, get_profile


@pytest.fixture(scope="module")
def corpora():
    profile = get_profile("restaurants", "phone")
    result = {}
    for name in ("tiny", "small", "medium"):
        t0 = time.perf_counter()
        incidence = profile.generate(SCALES[name], seed=0)
        result[name] = (incidence, time.perf_counter() - t0)
    return result


def test_scale_generation_medium(benchmark):
    profile = get_profile("restaurants", "phone")
    incidence = benchmark.pedantic(
        profile.generate, args=(SCALES["medium"],), kwargs={"seed": 1},
        rounds=1, iterations=1,
    )
    assert incidence.n_entities == SCALES["medium"].n_entities


def test_scale_coverage_medium(benchmark, corpora):
    incidence, __ = corpora["medium"]
    curves = benchmark(k_coverage_curves, incidence, (1, 5, 10))
    assert curves.final_coverage(1) > 0.9


def test_scale_emit(benchmark, corpora):
    def measure():
        rows = []
        for name, (incidence, gen_seconds) in corpora.items():
            t0 = time.perf_counter()
            k_coverage_curves(incidence, ks=(1, 5))
            coverage_seconds = time.perf_counter() - t0
            t0 = time.perf_counter()
            metrics = GraphMetrics.measure(
                incidence, "restaurants", "phone", max_bfs=64
            )
            graph_seconds = time.perf_counter() - t0
            rows.append(
                (name, incidence.n_edges, gen_seconds, coverage_seconds,
                 graph_seconds, metrics.diameter)
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "Scaling (restaurants/phone):",
        "  scale   edges      gen(s)  coverage(s)  graph(s)  diameter",
    ]
    for name, edges, gen_s, cov_s, graph_s, diameter in rows:
        lines.append(
            f"  {name:<7} {edges:<10} {gen_s:6.2f}  {cov_s:11.3f}"
            f"  {graph_s:8.2f}  {diameter:8d}"
        )
    emit_text("scaling", "\n".join(lines))

    by_name = {row[0]: row for row in rows}
    edge_ratio = by_name["medium"][1] / by_name["small"][1]
    coverage_ratio = max(by_name["medium"][3], 1e-9) / max(
        by_name["small"][3], 1e-9
    )
    # coverage cost grows no worse than ~quadratically in edges
    assert coverage_ratio < edge_ratio**2 * 2
