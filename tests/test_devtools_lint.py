"""Tests for reprolint (repro.devtools): rules, config, CLI, and the
guarantee that the shipped tree itself is violation-free."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.config import LintConfig, PathPolicy, load_config
from repro.devtools.lint import (
    PARSE_ERROR_RULE,
    check_project,
    check_source,
    lint_paths,
    main,
)
from repro.devtools.registry import all_rules, resolve_selectors
from repro.devtools.rules.layering import LAYERS

REPO_ROOT = Path(__file__).resolve().parent.parent

SRC_PATH = "src/repro/core/_fixture.py"


def rules_of(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------- RNG001


def test_rng001_flags_legacy_global_calls():
    findings = check_source(
        '"""M."""\nimport numpy as np\n\n__all__ = []\n\n'
        "np.random.seed(7)\n",
        select=["RNG001"],
    )
    assert rules_of(findings) == ["RNG001"]
    assert findings[0].line == 6


def test_rng001_flags_legacy_import_and_aliases():
    findings = check_source(
        '"""M."""\nfrom numpy.random import rand\n', select=["RNG001"]
    )
    assert rules_of(findings) == ["RNG001"]
    findings = check_source(
        '"""M."""\nimport numpy\n\nnumpy.random.shuffle([1, 2])\n',
        select=["RNG001"],
    )
    assert rules_of(findings) == ["RNG001"]


def test_rng001_clean_on_generator_usage():
    findings = check_source(
        '"""M."""\nimport numpy as np\n\n'
        "def draw(rng):\n"
        '    """Draw."""\n'
        "    return rng.integers(10)\n",
        select=["RNG001"],
    )
    assert findings == []


def test_rng001_inline_suppression():
    findings = check_source(
        '"""M."""\nimport numpy as np\n\n'
        "np.random.seed(7)  # reprolint: disable=RNG001\n",
        select=["RNG001"],
    )
    assert findings == []


# ---------------------------------------------------------------- RNG002


def test_rng002_flags_stdlib_random():
    assert rules_of(
        check_source('"""M."""\nimport random\n', select=["RNG002"])
    ) == ["RNG002"]
    assert rules_of(
        check_source('"""M."""\nfrom random import choice\n', select=["RNG002"])
    ) == ["RNG002"]


def test_rng002_does_not_flag_other_modules():
    findings = check_source(
        '"""M."""\nimport secrets\nfrom os import urandom\n', select=["RNG002"]
    )
    assert findings == []


# ---------------------------------------------------------------- RNG003


def test_rng003_flags_unseeded_default_rng():
    findings = check_source(
        '"""M."""\nimport numpy as np\n\nrng = np.random.default_rng()\n',
        select=["RNG003"],
    )
    assert rules_of(findings) == ["RNG003"]


def test_rng003_clean_when_seeded():
    findings = check_source(
        '"""M."""\nimport numpy as np\n\nrng = np.random.default_rng(0)\n',
        select=["RNG003"],
    )
    assert findings == []


# ---------------------------------------------------------------- RNG004


def test_rng004_flags_wall_clock_reads():
    findings = check_source(
        '"""M."""\nimport time\nfrom datetime import datetime\n\n'
        "t = time.time()\nnow = datetime.now()\n",
        select=["RNG004"],
    )
    assert rules_of(findings) == ["RNG004", "RNG004"]


def test_rng004_suppression_and_clean():
    findings = check_source(
        '"""M."""\nimport time\n\n'
        "t = time.time()  # reprolint: disable=RNG004\n",
        select=["RNG004"],
    )
    assert findings == []


# ---------------------------------------------------------------- SEED001


def test_seed001_flags_missing_seed_parameter():
    findings = check_source(
        '"""M."""\nimport numpy as np\n\n'
        "def noisy(n):\n"
        '    """Noise."""\n'
        "    rng = np.random.default_rng(1234)\n"
        "    return rng.normal(size=n)\n",
        select=["SEED001"],
    )
    assert rules_of(findings) == ["SEED001"]


def test_seed001_clean_with_rng_or_seed_parameter():
    source = (
        '"""M."""\nimport numpy as np\n\n'
        "def noisy(n, seed):\n"
        '    """Noise."""\n'
        "    rng = np.random.default_rng(seed)\n"
        "    return rng.normal(size=n)\n\n"
        "def draw(rng, n):\n"
        '    """Draw."""\n'
        "    return rng.integers(n)\n"
    )
    assert check_source(source, select=["SEED001"]) == []


def test_seed001_clean_for_seed_bearing_class_methods():
    source = (
        '"""M."""\nimport numpy as np\n\n'
        "class Sampler:\n"
        '    """Sampler."""\n\n'
        "    def __init__(self, seed=0):\n"
        "        self._rng = np.random.default_rng(seed)\n\n"
        "    def draw(self, n):\n"
        '        """Draw."""\n'
        "        rng = self._rng\n"
        "        return rng.integers(n)\n"
    )
    assert check_source(source, select=["SEED001"]) == []


def test_seed001_flags_instance_rng_without_seedable_init():
    source = (
        '"""M."""\nimport numpy as np\n\n'
        "class Sampler:\n"
        '    """Sampler."""\n\n'
        "    def __init__(self):\n"
        "        self._rng = np.random.default_rng()\n\n"
        "    def draw(self, n):\n"
        '        """Draw."""\n'
        "        return self._rng.integers(n)\n"
    )
    assert "SEED001" in rules_of(check_source(source, select=["SEED001"]))


def test_seed001_ignores_non_generator_receivers():
    source = (
        '"""M."""\n\n'
        "def pick(router, options):\n"
        '    """Pick."""\n'
        "    return router.choice(options)\n"
    )
    assert check_source(source, select=["SEED001"]) == []


def test_seed001_inline_suppression():
    source = (
        '"""M."""\nimport numpy as np\n\n'
        "def noisy(n):\n"
        '    """Noise."""\n'
        "    rng = np.random.default_rng(1)  # reprolint: disable=SEED001\n"
        "    return rng.normal(size=n)\n"
    )
    assert check_source(source, select=["SEED001"]) == []


# ---------------------------------------------------------------- LAY001/2


def test_lay001_flags_forbidden_edge():
    findings = check_project(
        {
            "src/repro/core/thing.py": (
                '"""M."""\nfrom repro.pipeline.config import ExperimentConfig\n'
            )
        },
        select=["LAY001"],
    )
    assert rules_of(findings) == ["LAY001"]
    assert "core" in findings[0].message and "pipeline" in findings[0].message


def test_lay001_allows_dag_edges_and_relative_imports():
    findings = check_project(
        {
            "src/repro/webgen/render.py": (
                '"""M."""\nfrom ..entities.catalog import Entity\n'
                "from repro.crawl.store import Page\n"
            )
        },
        select=["LAY001"],
    )
    assert findings == []


def test_lay001_root_modules_sit_above_the_dag():
    findings = check_project(
        {"src/repro/cli.py": '"""M."""\nfrom repro.pipeline import runall\n'},
        select=["LAY001"],
    )
    assert findings == []


def test_lay002_flags_cycles():
    findings = check_project(
        {
            "src/repro/crawl/a.py": '"""M."""\nimport repro.extract.runner\n',
            "src/repro/extract/b.py": '"""M."""\nimport repro.crawl.store\n',
        },
        select=["LAY002"],
    )
    assert rules_of(findings) == ["LAY002"]
    assert "crawl" in findings[0].message and "extract" in findings[0].message


def test_lay002_clean_on_acyclic_imports():
    findings = check_project(
        {
            "src/repro/extract/b.py": '"""M."""\nimport repro.crawl.store\n',
            "src/repro/crawl/a.py": '"""M."""\nimport repro.core.incidence\n',
        },
        select=["LAY002"],
    )
    assert findings == []


# ---------------------------------------------------------------- API001/2/3


def test_api001_flags_missing_docstrings():
    findings = check_source(
        "def f():\n    pass\n\n"
        "class C:\n"
        '    """C."""\n\n'
        "    def m(self):\n"
        "        pass\n",
        select=["API001"],
    )
    # module + function f + method C.m
    assert rules_of(findings) == ["API001", "API001", "API001"]


def test_api001_ignores_private_and_dunder():
    findings = check_source(
        '"""M."""\n\n'
        "def _helper():\n    pass\n\n"
        "class C:\n"
        '    """C."""\n\n'
        "    def __repr__(self):\n"
        "        return 'C'\n",
        select=["API001"],
    )
    assert findings == []


def test_api002_missing_all_and_mismatches():
    assert rules_of(check_source('"""M."""\n', select=["API002"])) == ["API002"]
    findings = check_source(
        '"""M."""\n\n__all__ = ["ghost"]\n\n'
        "def visible():\n"
        '    """V."""\n',
        select=["API002"],
    )
    assert rules_of(findings) == ["API002", "API002"]  # ghost + visible


def test_api002_clean_when_consistent():
    findings = check_source(
        '"""M."""\n\n__all__ = ["visible"]\n\n'
        "def visible():\n"
        '    """V."""\n\n'
        "def _hidden():\n"
        '    """H."""\n',
        select=["API002"],
    )
    assert findings == []


def test_api003_flags_mutable_defaults():
    findings = check_source(
        '"""M."""\n\n'
        "def f(a, b=[], c={}, d=set(), *, e=list()):\n"
        '    """F."""\n',
        select=["API003"],
    )
    assert rules_of(findings) == ["API003"] * 4


def test_api003_clean_on_immutable_defaults():
    findings = check_source(
        '"""M."""\n\n'
        "def f(a, b=(), c=None, d=0, e=\"x\"):\n"
        '    """F."""\n',
        select=["API003"],
    )
    assert findings == []


# ------------------------------------------------------- suppression forms


def test_file_level_suppression():
    findings = check_source(
        '"""M."""\n# reprolint: disable-file=RNG002\nimport random\n',
        select=["RNG002"],
    )
    assert findings == []


def test_suppression_is_rule_specific():
    findings = check_source(
        '"""M."""\nimport numpy as np\n\n'
        "np.random.seed(7)  # reprolint: disable=RNG003\n",
        select=["RNG001"],
    )
    assert rules_of(findings) == ["RNG001"]


def test_directive_inside_string_is_ignored():
    findings = check_source(
        '"""M."""\nimport random\n\n'
        'NOTE = "# reprolint: disable-file=RNG002"\n',
        select=["RNG002"],
    )
    assert rules_of(findings) == ["RNG002"]


# --------------------------------------------------------- registry/config


def test_selectors_expand_families_and_reject_unknown():
    ids = resolve_selectors(["RNG"])
    assert {"RNG001", "RNG002", "RNG003", "RNG004"} <= ids
    assert resolve_selectors(["all"]) == frozenset(all_rules())
    with pytest.raises(ValueError):
        resolve_selectors(["NOPE123"])


def test_config_longest_prefix_wins_and_excludes(tmp_path):
    config = LintConfig(
        exclude=("examples",),
        paths=(
            PathPolicy("src", ("RNG",)),
            PathPolicy("src/repro/core", ("API003",)),
        ),
    )
    assert config.selectors_for("src/repro/core/graph.py") == ("API003",)
    assert config.selectors_for("src/repro/cli.py") == ("RNG",)
    assert config.selectors_for("tests/test_x.py") == ("all",)
    assert config.is_excluded("examples/quickstart.py")
    assert not config.is_excluded("examples_extra/other.py")


def test_load_config_reads_real_pyproject():
    config = load_config(REPO_ROOT / "pyproject.toml")
    assert config.is_excluded("examples/quickstart.py")
    # Longest-prefix match: the core kernels add the PERF hot-path rules.
    assert config.selectors_for("src/repro/core/graph.py") == (
        "RNG",
        "SEED",
        "LAY",
        "API",
        "PERF",
    )
    # The perf layer may read clocks (that is its job) but keeps the
    # rest of the determinism contract, plus the ROB error discipline.
    perf_selectors = config.selectors_for("src/repro/perf/executor.py")
    assert "RNG004" not in perf_selectors
    assert "RNG001" in perf_selectors
    assert "ROB" in perf_selectors
    assert config.selectors_for("src/repro/pipeline/runall.py") == (
        "RNG",
        "SEED",
        "LAY",
        "API",
        "ROB",
    )
    # repro.resilience hosts the sanctioned sleep; no ROB select there.
    assert "ROB" not in config.selectors_for("src/repro/resilience/policy.py")
    assert "API001" not in config.selectors_for("benchmarks/bench_fig1.py")


def test_parse_error_reported_not_raised(tmp_path):
    bad = tmp_path / "src" / "broken.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def broken(:\n")
    findings, checked = lint_paths([Path("src")], tmp_path, LintConfig())
    assert checked == 1
    assert rules_of(findings) == [PARSE_ERROR_RULE]


# ------------------------------------------------------------ CLI surface


def test_cli_json_schema(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "core" / "bad.py"
    target.parent.mkdir(parents=True)
    target.write_text('"""M."""\nimport random\n')
    code = main(
        ["src", "--root", str(tmp_path), "--format", "json", "--select", "RNG002"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["version"] == 1
    assert payload["files_checked"] == 1
    assert payload["summary"] == {"total": 1, "by_rule": {"RNG002": 1}}
    finding = payload["findings"][0]
    assert finding["rule"] == "RNG002"
    assert finding["path"].endswith("bad.py")
    assert set(finding) == {"path", "line", "col", "rule", "message"}


def test_cli_missing_path_is_an_error_not_clean(tmp_path, capsys):
    # A typo'd path must not report "clean" and gate CI green.
    assert main(["no_such_dir", "--root", str(tmp_path)]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_cli_exit_zero_and_clean_message(tmp_path, capsys):
    target = tmp_path / "src" / "ok.py"
    target.parent.mkdir(parents=True)
    target.write_text('"""M."""\n\n__all__ = []\n')
    assert main(["src", "--root", str(tmp_path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_runs_as_module():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.devtools.lint", "--list-rules"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0
    assert "RNG001" in proc.stdout and "LAY001" in proc.stdout


# --------------------------------------------- the shipped tree is clean


def test_shipped_tree_is_violation_free(capsys):
    code = main(
        ["src", "tests", "benchmarks", "--root", str(REPO_ROOT), "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == [], payload["findings"]
    assert code == 0
    # All three roots were actually walked, not silently skipped.
    assert payload["files_checked"] > 100


def test_layering_dag_matches_design_section3():
    # DESIGN §3: core is pure analysis — imports nothing from anywhere.
    assert LAYERS["core"] == frozenset()
    # entities never depends on webgen (it is webgen's *input*).
    assert "webgen" not in LAYERS["entities"]
    # report renders results; it must not reach back into pipeline.
    assert "pipeline" not in LAYERS["report"]
    # nothing may import pipeline except serve (the online consumer of
    # the batch pipeline's builders), store (which compiles the
    # pipeline's artifacts into out-of-core tiers), and root modules.
    assert all(
        "pipeline" not in allowed
        for pkg, allowed in LAYERS.items()
        if pkg not in {"serve", "store"}
    )
    # serve is the top of the DAG: a sink no other subsystem imports.
    assert "pipeline" in LAYERS["serve"]
    assert all("serve" not in allowed for allowed in LAYERS.values())
    # store sits below serve and never knows about HTTP.
    assert "store" in LAYERS["serve"]
    assert all(
        "store" not in allowed
        for pkg, allowed in LAYERS.items()
        if pkg != "serve"
    )
    # devtools is a leaf: lints the tree without participating in it.
    assert LAYERS["devtools"] == frozenset()
    # The whitelist itself is acyclic (defensive: config drift).
    visiting, done = set(), set()

    def visit(pkg):
        assert pkg not in visiting, f"cycle through {pkg}"
        if pkg in done:
            return
        visiting.add(pkg)
        for dep in LAYERS.get(pkg, ()):  # noqa: B007
            visit(dep)
        visiting.discard(pkg)
        done.add(pkg)

    for pkg in LAYERS:
        visit(pkg)


# ---------------------------------------------------------------- STORE001


def test_store001_flags_interpolated_sql():
    findings = check_source(
        '"""M."""\n\n\n'
        "def bad(conn, table, k):\n"
        '    """B."""\n'
        '    conn.execute(f"SELECT * FROM {table}")\n'
        '    conn.execute("SELECT * FROM t WHERE k = %s" % k)\n'
        '    conn.execute("SELECT * FROM " + table)\n'
        '    conn.executemany("INSERT INTO t VALUES ({})".format(k), [])\n'
        '    conn.executescript(";".join(["a", "b"]))\n',
        select=["STORE001"],
    )
    assert rules_of(findings) == ["STORE001"] * 5
    assert [f.line for f in findings] == [6, 7, 8, 9, 10]


def test_store001_clean_on_constant_statements():
    findings = check_source(
        '"""M."""\n\n\n'
        "def good(conn, k):\n"
        '    """G."""\n'
        '    conn.execute("SELECT * FROM t WHERE k = ?", (k,))\n'
        '    conn.execute("SELECT entity FROM edges "\n'
        '                 "WHERE pair_id = ? AND site = ?", (1, 2))\n'
        '    conn.execute("SELECT 1" + " FROM t")\n'
        '    conn.executescript("CREATE TABLE a(x); CREATE TABLE b(y);")\n',
        select=["STORE001"],
    )
    assert findings == []


def test_store001_ignores_non_execute_calls():
    findings = check_source(
        '"""M."""\n\n\n'
        "def other(runner, name):\n"
        '    """O."""\n'
        '    runner.launch(f"job-{name}")\n',
        select=["STORE001"],
    )
    assert findings == []


def test_store001_selected_for_the_store_tree():
    config = load_config(REPO_ROOT / "pyproject.toml")
    selectors = config.selectors_for("src/repro/store/sql.py")
    assert "STORE" in selectors
    assert "STORE001" in resolve_selectors(selectors)
