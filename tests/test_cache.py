"""Tests for the host-grouped web cache view."""

from __future__ import annotations

from repro.crawl.cache import WebCache
from repro.crawl.store import MemoryPageStore, Page


def build_cache() -> WebCache:
    store = MemoryPageStore()
    store.add(Page.from_url("http://a.example/1", "alpha"))
    store.add(Page.from_url("http://a.example/2", "beta"))
    store.add(Page.from_url("http://b.example/1", "gamma"))
    return WebCache(store)


def test_counts():
    cache = build_cache()
    assert cache.n_pages() == 3
    assert cache.n_hosts() == 2
    assert cache.hosts() == ["a.example", "b.example"]


def test_scan_groups_by_host():
    cache = build_cache()
    groups = dict(cache.scan())
    assert set(groups) == {"a.example", "b.example"}
    assert len(groups["a.example"]) == 2


def test_scan_pages_flat():
    cache = build_cache()
    contents = [page.content for page in cache.scan_pages()]
    assert contents == ["alpha", "beta", "gamma"]


def test_map_hosts():
    cache = build_cache()
    counts = cache.map_hosts(lambda host, pages: len(pages))
    assert counts == {"a.example": 2, "b.example": 1}


def test_store_accessor():
    cache = build_cache()
    assert len(cache.store) == 3
