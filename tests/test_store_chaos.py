"""Chaos: faults against the out-of-core store during hot reload must
never tear a response — the old epoch keeps serving, byte-identical."""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.perf import ArtifactCache, configure_cache
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.runall import write_manifest
from repro.resilience import ENV_FAULTS, clear_plan_cache
from repro.serve import (
    ManifestWatcher,
    ServeApp,
    ServeSettings,
    build_index,
    load_manifest,
)

PROBES = (
    "/healthz",
    "/v1/coverage/restaurants?k=1&t=2",
    "/v1/entity/restaurants/0/sites",
    "/v1/setcover/restaurants?budget=3",
)


@pytest.fixture(autouse=True)
def no_faults(monkeypatch):
    monkeypatch.delenv(ENV_FAULTS, raising=False)
    clear_plan_cache()
    yield
    clear_plan_cache()


def write_run(root, seed: int):
    """A run directory trimmed to one pair, one traffic site."""
    config = ExperimentConfig(scale="tiny", seed=seed).scaled_down(400)
    path = write_manifest(root, config, ["table1.txt"])
    payload = json.loads(path.read_text())
    payload["spread_pairs"] = [["restaurants", "phone"]]
    payload["traffic_sites"] = ["imdb"]
    path.write_text(json.dumps(payload))
    return path


def bump_mtime(path, seconds: float = 10.0) -> None:
    stamp = os.stat(path).st_mtime + seconds
    os.utime(path, (stamp, stamp))


def sqlite_builder(manifest):
    """The builder the CLI binds for ``--backend sqlite``."""
    return build_index(manifest, backend="sqlite")


@pytest.fixture()
def chaos_env(tmp_path):
    """A sqlite-backed app + watcher over its own artifact cache."""
    previous = configure_cache(
        ArtifactCache(directory=tmp_path / "cache")
    )
    run = tmp_path / "run"
    run.mkdir()
    manifest_path = write_run(run, seed=0)
    app = ServeApp(
        sqlite_builder(load_manifest(run)),
        ServeSettings(response_cache_entries=0),
    )
    watcher = ManifestWatcher(run, app, 30.0, builder=sqlite_builder)
    try:
        yield run, manifest_path, app, watcher
    finally:
        app.close()
        configure_cache(previous)


def test_corrupted_store_compile_keeps_the_old_epoch(
    chaos_env, monkeypatch
):
    run, manifest_path, app, watcher = chaos_env
    before = {path: app.handle(path) for path in PROBES}
    old_identity = app.index.identity

    # A genuinely different run arrives, but every blob published during
    # the rebuild is corrupted on disk.
    write_run(run, seed=1)
    bump_mtime(manifest_path)
    monkeypatch.setenv(ENV_FAULTS, "op=corrupt,key=*")
    clear_plan_cache()
    assert watcher.check_once() is False
    assert watcher.last_error is not None
    assert app.index.identity == old_identity
    for path, expected in before.items():
        assert app.handle(path) == expected

    # Faults clear; the next poll retries and swaps cleanly.
    monkeypatch.delenv(ENV_FAULTS)
    clear_plan_cache()
    bump_mtime(manifest_path, seconds=20.0)
    assert watcher.check_once() is True
    assert watcher.last_error is None
    assert app.index.identity != old_identity
    assert app.index.backend == "sqlite"
    status, __ = app.handle("/healthz")
    assert status == 200


def test_stalled_store_rebuild_never_tears_responses(
    chaos_env, monkeypatch
):
    """Requests during a stalled sqlite rebuild see exactly the old or
    the new epoch's bytes — never a mixture, never an error."""
    run, manifest_path, app, watcher = chaos_env
    old = {path: app.handle(path) for path in PROBES}

    write_run(run, seed=1)
    bump_mtime(manifest_path)
    monkeypatch.setenv(ENV_FAULTS, "op=stall,key=*,seconds=0.05")
    clear_plan_cache()

    stop = threading.Event()
    torn: list[tuple[str, object]] = []
    new: dict[str, object] = {}

    def hammer() -> None:
        while not stop.is_set():
            for path in PROBES:
                result = app.handle(path)
                if result == old[path]:
                    continue
                # Anything that is not the old epoch's bytes must be the
                # new epoch's — one value per path, statuses all 200.
                if path not in new:
                    new[path] = result
                if result != new[path] or result[0] != 200:
                    torn.append((path, result))

    thread = threading.Thread(target=hammer)
    thread.start()
    try:
        swapped = watcher.check_once()
    finally:
        stop.set()
        thread.join(timeout=10.0)
    assert swapped is True
    assert torn == []
    assert watcher.last_error is None
    assert app.index.backend == "sqlite"
    # The swapped epoch serves the new run's bytes from here on.
    settled = {path: app.handle(path) for path in PROBES}
    assert settled["/healthz"] != old["/healthz"]
    for path, result in settled.items():
        assert result[0] == 200
        assert app.handle(path) == result
