"""Tests for corpus evolution and re-crawl scheduling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.webgen.evolution import (
    CorpusEvolver,
    recrawl_comparison,
    staleness_curve,
)
from repro.webgen.profiles import get_profile


@pytest.fixture(scope="module")
def incidence():
    return get_profile("banks", "phone").generate("tiny", seed=71)


class TestEvolver:
    def test_step_preserves_entity_space(self, incidence):
        evolved = CorpusEvolver().step(incidence, rng=1)
        assert evolved.n_entities == incidence.n_entities
        assert evolved.n_sites == incidence.n_sites

    def test_no_churn_is_identity_on_edges(self, incidence):
        evolver = CorpusEvolver(
            edge_drop_rate=0.0, edge_add_rate=0.0, site_turnover_rate=0.0
        )
        evolved = evolver.step(incidence, rng=2)
        assert evolved.n_edges == incidence.n_edges

    def test_drop_rate_removes_edges(self, incidence):
        evolver = CorpusEvolver(
            edge_drop_rate=0.5, edge_add_rate=0.0, site_turnover_rate=0.0
        )
        evolved = evolver.step(incidence, rng=3)
        assert evolved.n_edges < incidence.n_edges
        assert evolved.n_edges > 0.3 * incidence.n_edges

    def test_add_rate_adds_edges(self, incidence):
        evolver = CorpusEvolver(
            edge_drop_rate=0.0, edge_add_rate=0.3, site_turnover_rate=0.0
        )
        evolved = evolver.step(incidence, rng=4)
        assert evolved.n_edges > incidence.n_edges

    def test_turnover_renames_tail_hosts(self, incidence):
        evolver = CorpusEvolver(site_turnover_rate=1.0)
        evolved = evolver.step(incidence, rng=5)
        renamed = [h for h in evolved.site_hosts if h.startswith("new-")]
        assert renamed  # the smallest decile was replaced

    def test_evolve_returns_snapshots(self, incidence):
        snapshots = CorpusEvolver().evolve(incidence, epochs=3, rng=6)
        assert len(snapshots) == 3
        assert CorpusEvolver().evolve(incidence, epochs=0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            CorpusEvolver(edge_drop_rate=1.5)
        with pytest.raises(ValueError):
            CorpusEvolver().evolve(None, epochs=-1)  # type: ignore[arg-type]


class TestStaleness:
    def test_monotone_decay(self, incidence):
        snapshots = CorpusEvolver(edge_drop_rate=0.1).evolve(
            incidence, epochs=4, rng=7
        )
        curve = staleness_curve(snapshots, incidence)
        assert len(curve) == 4
        assert np.all(np.diff(curve) <= 1e-12)
        assert curve[0] < 1.0

    def test_no_churn_no_decay(self, incidence):
        evolver = CorpusEvolver(
            edge_drop_rate=0.0, edge_add_rate=0.0, site_turnover_rate=0.0
        )
        snapshots = evolver.evolve(incidence, epochs=2, rng=8)
        curve = staleness_curve(snapshots, incidence)
        assert np.allclose(curve, 1.0)

    def test_empty_original_rejected(self):
        from repro.core.incidence import BipartiteIncidence

        empty = BipartiteIncidence.from_site_lists(n_entities=3, sites=[])
        with pytest.raises(ValueError):
            staleness_curve([empty], empty)


class TestRecrawl:
    def test_policies_ordered(self, incidence):
        evolver = CorpusEvolver(edge_drop_rate=0.1, edge_add_rate=0.1)
        results = recrawl_comparison(
            incidence, evolver, epochs=3, budget_per_epoch=30, rng=9
        )
        assert set(results) == {"none", "random", "largest_first"}
        # re-crawling must beat not re-crawling
        assert results["largest_first"] >= results["none"]
        assert results["random"] >= results["none"] - 0.02

    def test_zero_budget_equals_none(self, incidence):
        evolver = CorpusEvolver(edge_drop_rate=0.1)
        results = recrawl_comparison(
            incidence, evolver, epochs=2, budget_per_epoch=0, rng=10
        )
        assert results["random"] == pytest.approx(results["none"], abs=0.05)

    def test_validation(self, incidence):
        with pytest.raises(ValueError):
            recrawl_comparison(incidence, CorpusEvolver(), epochs=0)
