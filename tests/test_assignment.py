"""Tests for the entity→site assignment model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.graph import EntitySiteGraph
from repro.webgen.assignment import (
    AssignmentModel,
    _calibrate_bernoulli_scale,
    attach_review_multiplicity,
)
from repro.webgen.sitemodel import SiteSizeModel


def small_model(**overrides) -> AssignmentModel:
    size_model = SiteSizeModel.calibrated(
        n_entities=500, n_sites=800, head_coverage=0.5, target_edges_per_entity=8.0
    )
    defaults = dict(
        size_model=size_model,
        popularity_exponent=0.7,
        island_fraction=0.01,
        niche_fraction=0.3,
        n_localities=20,
    )
    defaults.update(overrides)
    return AssignmentModel(**defaults)


def test_deterministic_given_seed():
    a = small_model().generate(42)
    b = small_model().generate(42)
    assert a.site_hosts == b.site_hosts
    assert np.array_equal(a.entity_idx, b.entity_idx)
    assert np.array_equal(a.site_ptr, b.site_ptr)


def test_edge_budget_respected():
    inc = small_model().generate(1)
    target = 8.0 * 500
    assert 0.7 * target <= inc.n_edges <= 1.2 * target


def test_head_site_near_target_size():
    inc = small_model().generate(2)
    # first (largest) model site should mention close to half the entities
    assert inc.site_sizes()[0] >= 0.4 * 500


def test_island_entities_isolated():
    inc = small_model(island_fraction=0.02).generate(3)
    island_hosts = [h for h in inc.site_hosts if h.startswith("island-")]
    assert island_hosts, "expected island sites"
    summary = EntitySiteGraph(inc).components()
    assert summary.n_components > 1
    # islands hold 1-2 entities each
    for s, host in enumerate(inc.site_hosts):
        if host.startswith("island-"):
            assert 1 <= len(inc.site_entities(s)) <= 2


def test_min_island_floor_applies():
    inc = small_model(island_fraction=0.0001, min_island_entities=4).generate(4)
    island_entities = set()
    for s, host in enumerate(inc.site_hosts):
        if host.startswith("island-"):
            island_entities.update(inc.site_entities(s).tolist())
    assert len(island_entities) >= 4


def test_no_islands_when_fraction_zero():
    inc = small_model(island_fraction=0.0).generate(5)
    assert not any(h.startswith("island-") for h in inc.site_hosts)


def test_niche_sites_use_local_hosts():
    inc = small_model(niche_fraction=1.0, niche_size_threshold=10**9).generate(6)
    assert any(h.startswith("local-") for h in inc.site_hosts)


def test_validation():
    with pytest.raises(ValueError):
        small_model(island_fraction=0.9)
    with pytest.raises(ValueError):
        small_model(max_island_size=0)
    with pytest.raises(ValueError):
        small_model(niche_fraction=1.5)
    with pytest.raises(ValueError):
        small_model(n_localities=0)


def test_popularity_bias():
    """Popular entities (low index) collect more mentions than tail ones."""
    inc = small_model(popularity_exponent=1.0).generate(7)
    counts = inc.entity_mention_counts()
    head_mean = counts[:50].mean()
    tail_mean = counts[-100:].mean()
    assert head_mean > 2 * tail_mean


def test_bernoulli_scale_calibration():
    weights = np.array([0.5, 0.25, 0.125, 0.125])
    scale = _calibrate_bernoulli_scale(weights, 2.0)
    probabilities = np.minimum(1.0, scale * weights)
    assert probabilities.sum() == pytest.approx(2.0, abs=1e-6)


def test_bernoulli_scale_target_at_capacity():
    weights = np.array([1.0, 1.0])
    assert _calibrate_bernoulli_scale(weights, 2.0) == np.inf


def test_review_multiplicity():
    inc = small_model().generate(8)
    with_reviews = attach_review_multiplicity(inc, rng=9, base_extra=2.0)
    assert with_reviews.multiplicity is not None
    assert with_reviews.multiplicity.min() >= 1
    assert with_reviews.total_pages() > with_reviews.n_edges  # some extras
    # structure untouched
    assert np.array_equal(with_reviews.entity_idx, inc.entity_idx)


def test_review_multiplicity_zero_base():
    inc = small_model().generate(10)
    flat = attach_review_multiplicity(inc, rng=11, base_extra=0.0)
    assert flat.total_pages() == flat.n_edges


def test_review_multiplicity_rejects_negative_base():
    inc = small_model().generate(12)
    with pytest.raises(ValueError):
        attach_review_multiplicity(inc, rng=13, base_extra=-1.0)
