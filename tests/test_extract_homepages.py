"""Tests for the anchor-href homepage extractor."""

from __future__ import annotations

from repro.extract.homepages import extract_anchor_urls, extract_homepages


def test_collects_hrefs_in_order():
    html = '<a href="http://a.com/">A</a> text <a href="http://b.com/x">B</a>'
    assert extract_anchor_urls(html) == ["http://a.com/", "http://b.com/x"]


def test_ignores_other_tags():
    html = '<img src="http://a.com/pic.png"><link href="http://css.com/x">'
    assert extract_anchor_urls(html) == []


def test_anchor_without_href():
    assert extract_anchor_urls('<a name="top">anchor</a>') == []


def test_homepages_canonicalized():
    html = (
        '<a href="http://www.example.com/">E</a>'
        '<a href="https://example.com">E2</a>'
    )
    assert extract_homepages(html) == {"example.com"}


def test_relative_links_skipped():
    html = '<a href="/about.html">About</a><a href="#top">Top</a>'
    assert extract_homepages(html) == set()


def test_mailto_and_javascript_skipped():
    html = (
        '<a href="mailto:x@example.com">mail</a>'
        '<a href="javascript:void(0)">js</a>'
    )
    assert extract_homepages(html) == set()


def test_www_prefixed_without_scheme():
    html = '<a href="www.example.org/page/">x</a>'
    assert extract_homepages(html) == {"example.org/page"}


def test_multiple_distinct_hosts():
    html = (
        '<a href="http://one.com/">1</a>'
        '<a href="http://two.com/shop/">2</a>'
    )
    assert extract_homepages(html) == {"one.com", "two.com/shop"}


def test_malformed_html_does_not_crash():
    html = '<a href="http://ok.com/"<b>broken<a href=>empty</a>'
    assert "ok.com" in extract_homepages(html)
