"""The serve path must not pay for the batch-pipeline stack at import.

IMP001 enforces this statically from the committed import-cost tables;
these tests enforce it dynamically: a fresh interpreter importing the
serve tier must not load ``repro.pipeline.experiments`` (or the other
heavy batch modules), and the PEP 562 lazy exports of
``repro.pipeline`` must still behave like the old eager ones.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
HEAVY_BATCH_MODULES = (
    "repro.pipeline.experiments",
    "repro.pipeline.extensions",
    "repro.pipeline.runall",
)


def _loaded_after(statement):
    """Module names present in sys.modules after ``statement`` (fresh proc)."""
    code = (
        f"{statement}\n"
        "import sys\n"
        "print('\\n'.join(sorted(n for n in sys.modules if n.startswith('repro'))))\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )
    return set(proc.stdout.split())


def test_importing_serve_skips_the_batch_stack():
    loaded = _loaded_after("import repro.serve")
    assert "repro.serve" in loaded
    # The manifest contract comes from the light config module...
    assert "repro.pipeline.config" in loaded
    # ...and none of the heavy batch stack rides along.
    for heavy in HEAVY_BATCH_MODULES:
        assert heavy not in loaded, heavy


def test_importing_pipeline_package_is_lazy():
    loaded = _loaded_after("import repro.pipeline")
    for heavy in HEAVY_BATCH_MODULES:
        assert heavy not in loaded, heavy


def test_lazy_exports_resolve_and_cache():
    import repro.pipeline as pipeline

    # Attribute access triggers the PEP 562 import and returns the real
    # object (identical to importing the submodule directly).
    from repro.pipeline.experiments import run_spread

    assert pipeline.run_spread is run_spread
    assert "run_spread" in vars(pipeline)  # cached: next access is direct
    assert "run_spread" in dir(pipeline)
    assert pipeline.MANIFEST_NAME == "manifest.json"  # eager re-export


def test_unknown_attribute_still_raises():
    import repro.pipeline as pipeline

    try:
        pipeline.no_such_export
    except AttributeError as exc:
        assert "no_such_export" in str(exc)
    else:  # pragma: no cover - the assert documents intent
        raise AssertionError("expected AttributeError")
