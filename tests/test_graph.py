"""Unit and property tests for the entity-site graph analysis.

Components, BFS distances, and exact diameters are cross-checked
against networkx on randomized graphs.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.graph import (
    EntitySiteGraph,
    GraphMetrics,
    UnionFind,
    robustness_curve,
)
from repro.core.incidence import BipartiteIncidence


def to_networkx(inc: BipartiteIncidence) -> nx.Graph:
    graph = nx.Graph()
    for s in range(inc.n_sites):
        site_node = inc.n_entities + s
        for e in inc.site_entities(s).tolist():
            graph.add_edge(e, site_node)
    return graph


# -- UnionFind -------------------------------------------------------------------


class TestUnionFind:
    def test_basic(self):
        uf = UnionFind(5)
        assert uf.n_components == 5
        assert uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.n_components == 4
        assert uf.find(0) == uf.find(1)
        assert uf.find(2) != uf.find(0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_roots_consistent_with_find(self):
        uf = UnionFind(10)
        rng = np.random.default_rng(3)
        for _ in range(15):
            a, b = rng.integers(10, size=2)
            uf.union(int(a), int(b))
        roots = uf.roots()
        for x in range(10):
            assert roots[x] == uf.find(x)

    @given(st.lists(st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=40))
    @settings(max_examples=60)
    def test_property_matches_networkx(self, unions):
        uf = UnionFind(15)
        graph = nx.Graph()
        graph.add_nodes_from(range(15))
        for a, b in unions:
            uf.union(a, b)
            graph.add_edge(a, b)
        assert uf.n_components == nx.number_connected_components(graph)


# -- components ---------------------------------------------------------------------


class TestComponents:
    def test_tiny_structure(self, tiny_incidence):
        summary = EntitySiteGraph(tiny_incidence).components()
        assert summary.n_components == 2
        assert summary.n_present_entities == 6
        assert summary.n_present_sites == 4
        assert summary.largest_component_entities == 5
        assert summary.fraction_entities_in_largest == pytest.approx(5 / 6)
        assert summary.component_entity_counts.tolist() == [5, 1]

    def test_unmentioned_entities_not_in_graph(self):
        inc = BipartiteIncidence.from_site_lists(
            n_entities=10, sites=[("a.example", [0, 1])]
        )
        summary = EntitySiteGraph(inc).components()
        assert summary.n_present_entities == 2
        assert summary.n_components == 1

    def test_empty_graph(self):
        inc = BipartiteIncidence.from_site_lists(n_entities=3, sites=[])
        summary = EntitySiteGraph(inc).components()
        assert summary.n_components == 0
        assert summary.fraction_entities_in_largest == 0.0

    def test_components_match_networkx(self, random_incidence):
        summary = EntitySiteGraph(random_incidence).components()
        reference = to_networkx(random_incidence)
        assert summary.n_components == nx.number_connected_components(reference)
        largest = max(nx.connected_components(reference), key=len)
        entities_in_largest = sum(
            1 for node in largest if node < random_incidence.n_entities
        )
        assert summary.largest_component_entities == entities_in_largest


# -- BFS / diameter ------------------------------------------------------------------


class TestDistances:
    def test_bfs_levels_tiny(self, tiny_incidence):
        graph = EntitySiteGraph(tiny_incidence)
        levels = graph.bfs_levels(0)  # entity 0
        assert levels[0] == 0
        assert levels[6] == 1  # big.example (node n_entities + 0)
        assert levels[1] == 2  # sibling entity via big.example
        assert levels[4] == 4  # entity 4 via mid.example
        assert levels[5] == -1  # island unreachable

    def test_eccentricity(self, tiny_incidence):
        graph = EntitySiteGraph(tiny_incidence)
        assert graph.eccentricity(0) == 5  # entity0 ... small.example

    def test_degree_and_neighbors(self, tiny_incidence):
        graph = EntitySiteGraph(tiny_incidence)
        assert graph.degree(0) == 1
        assert graph.degree(6) == 4
        assert set(graph.neighbors(6).tolist()) == {0, 1, 2, 3}

    def test_diameter_tiny(self, tiny_incidence):
        # Largest component: path small.example-4-mid-{2,3}-big-{0,1}
        assert EntitySiteGraph(tiny_incidence).diameter() == 5

    def test_diameter_single_node_component(self):
        inc = BipartiteIncidence.from_site_lists(
            n_entities=1, sites=[("solo.example", [0])]
        )
        assert EntitySiteGraph(inc).diameter() == 1

    def test_diameter_empty(self):
        inc = BipartiteIncidence.from_site_lists(n_entities=2, sites=[])
        assert EntitySiteGraph(inc).diameter() == 0

    def test_bfs_matches_networkx(self, random_incidence):
        graph = EntitySiteGraph(random_incidence)
        reference = to_networkx(random_incidence)
        source = int(random_incidence.site_entities(0)[0])
        expected = nx.single_source_shortest_path_length(reference, source)
        levels = graph.bfs_levels(source)
        for node, distance in expected.items():
            assert levels[node] == distance

    def test_diameter_matches_networkx(self, random_incidence):
        graph = EntitySiteGraph(random_incidence)
        reference = to_networkx(random_incidence)
        largest = max(nx.connected_components(reference), key=len)
        expected = nx.diameter(reference.subgraph(largest))
        assert graph.diameter() == expected

    def test_double_sweep_lower_bound(self, random_incidence):
        graph = EntitySiteGraph(random_incidence)
        start = int(graph.present_nodes()[0])
        lower, root, __ = graph.double_sweep(start)
        assert lower <= graph.diameter()
        assert graph.bfs_levels(start)[root] >= 0  # root in same component


@st.composite
def connected_ish_incidence(draw):
    n_entities = draw(st.integers(min_value=2, max_value=14))
    n_sites = draw(st.integers(min_value=1, max_value=6))
    sites = []
    for s in range(n_sites):
        entities = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_entities - 1),
                min_size=1,
                max_size=6,
            )
        )
        sites.append((f"s{s}", entities))
    return BipartiteIncidence.from_site_lists(n_entities=n_entities, sites=sites)


@given(connected_ish_incidence())
@settings(max_examples=50, deadline=None)
def test_property_diameter_exact(inc):
    """BoundingDiameters equals networkx's exact diameter.

    The library defines the diameter of a disconnected graph as the
    max over its components, so the reference does the same.
    """
    reference = to_networkx(inc)
    expected = max(
        (
            nx.diameter(reference.subgraph(component))
            for component in nx.connected_components(reference)
            if len(component) > 1
        ),
        default=0,
    )
    assert EntitySiteGraph(inc).diameter() == expected


@given(connected_ish_incidence())
@settings(max_examples=50, deadline=None)
def test_property_components_exact(inc):
    summary = EntitySiteGraph(inc).components()
    reference = to_networkx(inc)
    assert summary.n_components == nx.number_connected_components(reference)


# -- metrics & robustness --------------------------------------------------------------


class TestMetricsAndRobustness:
    def test_graph_metrics_row(self, tiny_incidence):
        metrics = GraphMetrics.measure(tiny_incidence, "demo", "phone")
        assert metrics.domain == "demo"
        assert metrics.diameter == 5
        assert metrics.n_components == 2
        assert metrics.avg_sites_per_entity == pytest.approx(9 / 6)
        assert metrics.pct_entities_in_largest == pytest.approx(100 * 5 / 6)

    def test_robustness_curve_tiny(self, tiny_incidence):
        ks, fractions = robustness_curve(tiny_incidence, max_removed=2)
        assert ks.tolist() == [0, 1, 2]
        assert fractions[0] == pytest.approx(5 / 6)
        # removing big.example leaves mid+small component of 3 entities
        assert fractions[1] == pytest.approx(3 / 6)

    def test_robustness_denominator_fixed(self, tiny_incidence):
        __, fractions = robustness_curve(tiny_incidence, max_removed=4)
        # with every site removed nothing is in any component
        assert fractions[-1] == pytest.approx(0.0)

    def test_robustness_rejects_negative(self, tiny_incidence):
        with pytest.raises(ValueError):
            robustness_curve(tiny_incidence, max_removed=-1)

    def test_robustness_monotone_nonincreasing(self, random_incidence):
        __, fractions = robustness_curve(random_incidence, max_removed=5)
        assert np.all(np.diff(fractions) <= 1e-12)


class TestEccentricitySample:
    def test_bounded_by_radius_and_diameter(self, random_incidence):
        graph = EntitySiteGraph(random_incidence)
        eccentricities = graph.eccentricity_sample(sample_size=32, rng=1)
        diameter = graph.diameter()
        assert len(eccentricities) > 0
        assert eccentricities.max() <= diameter
        # radius >= diameter / 2 for any graph
        assert eccentricities.min() >= (diameter + 1) // 2

    def test_sorted_output(self, random_incidence):
        graph = EntitySiteGraph(random_incidence)
        eccentricities = graph.eccentricity_sample(sample_size=16, rng=2)
        assert (np.diff(eccentricities) >= 0).all()

    def test_empty_graph(self):
        inc = BipartiteIncidence.from_site_lists(n_entities=2, sites=[])
        assert EntitySiteGraph(inc).eccentricity_sample().size == 0

    def test_validation(self, random_incidence):
        with pytest.raises(ValueError):
            EntitySiteGraph(random_incidence).eccentricity_sample(sample_size=0)
