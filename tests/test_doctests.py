"""Run the doctest examples embedded in docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro.entities.ids

MODULES_WITH_DOCTESTS = [repro.entities.ids]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0  # the examples must actually exist
