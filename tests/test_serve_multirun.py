"""Multi-run serving: RunRouter prefix routing, the sharded registry,
and the peak-RSS accounting the storage ladder reports."""

from __future__ import annotations

import http.client
import json
import os

import pytest

from repro.perf import peak_rss_mb, rss_high_water_mb
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.runall import write_manifest
from repro.resilience import ENV_FAULTS, clear_plan_cache
from repro.serve import (
    RunRouter,
    ServeApp,
    ServeSettings,
    ShardPlan,
    ShardedServer,
    build_index,
    load_manifest,
    make_server,
)
from repro.store import Manifest


@pytest.fixture(autouse=True)
def no_faults(monkeypatch):
    monkeypatch.delenv(ENV_FAULTS, raising=False)
    clear_plan_cache()
    yield
    clear_plan_cache()


def manifest_for(seed: int) -> Manifest:
    return Manifest(
        config=ExperimentConfig(scale="tiny", seed=seed).scaled_down(400),
        spread_pairs=(("restaurants", "phone"),),
        traffic_sites=("imdb",),
        artifacts=(),
    )


def write_run(root, seed: int):
    config = ExperimentConfig(scale="tiny", seed=seed).scaled_down(400)
    path = write_manifest(root, config, ["table1.txt"])
    payload = json.loads(path.read_text())
    payload["spread_pairs"] = [["restaurants", "phone"]]
    payload["traffic_sites"] = ["imdb"]
    path.write_text(json.dumps(payload))
    return path


@pytest.fixture(scope="module")
def router():
    apps = {
        "alpha": ServeApp(
            build_index(manifest_for(0)), ServeSettings(response_cache_entries=0)
        ),
        "beta": ServeApp(
            build_index(manifest_for(1)), ServeSettings(response_cache_entries=0)
        ),
    }
    routed = RunRouter(apps, "alpha")
    yield routed
    routed.close()


# ------------------------------------------------------------ RunRouter


def test_runs_listing(router):
    status, body = router.handle("/v1/runs")
    assert status == 200
    payload = json.loads(body)
    assert payload["default_run"] == "alpha"
    assert [run["run_id"] for run in payload["runs"]] == ["alpha", "beta"]
    for run in payload["runs"]:
        assert run["backend"] == "ram"
        assert run["seed"] in (0, 1)
        assert len(run["index_fingerprint"]) == 64


def test_prefixed_routes_hit_the_named_run(router):
    direct = router.apps["beta"].handle("/v1/coverage/restaurants?k=1&t=2")
    routed = router.handle("/v1/run/beta/coverage/restaurants?k=1&t=2")
    assert routed == direct


def test_legacy_routes_hit_the_default_run(router):
    direct = router.apps["alpha"].handle("/v1/coverage/restaurants?k=1&t=2")
    assert router.handle("/v1/coverage/restaurants?k=1&t=2") == direct
    assert router.handle("/healthz") == router.apps["alpha"].handle("/healthz")


def test_default_run_prefix_matches_legacy(router):
    legacy = router.handle("/v1/coverage/restaurants?k=1&t=2")
    prefixed = router.handle("/v1/run/alpha/coverage/restaurants?k=1&t=2")
    assert prefixed == legacy


def test_unknown_run_is_a_404_naming_the_registry(router):
    status, body = router.handle("/v1/run/gamma/healthz")
    assert status == 404
    payload = json.loads(body)
    assert "gamma" in payload["error"]
    assert "alpha" in payload["error"] and "beta" in payload["error"]


def test_run_healthz_and_metrics_unwrap(router):
    status, body = router.handle("/v1/run/beta/healthz")
    assert status == 200
    assert json.loads(body)["seed"] == 1
    status, body = router.handle("/v1/run/beta/metrics")
    assert status == 200
    assert "requests_total" in json.loads(body)


def test_router_quacks_like_an_app(router):
    assert router.settings is router.apps["alpha"].settings
    assert router.worker_id == router.apps["alpha"].worker_id


def test_router_rejects_unknown_default():
    with pytest.raises(ValueError, match="default run"):
        RunRouter({}, "missing")


def test_router_behind_the_http_shell(router):
    server = make_server(router)
    host, port = server.server_address[:2]
    import threading

    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        conn = http.client.HTTPConnection(host, port, timeout=10)
        conn.request("GET", "/v1/runs")
        response = conn.getresponse()
        assert response.status == 200
        assert json.loads(response.read())["default_run"] == "alpha"
        conn.close()
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


# ------------------------------------------------------ sharded registry


def test_sharded_server_serves_extra_runs(tmp_path):
    alpha, beta = tmp_path / "alpha", tmp_path / "beta"
    alpha.mkdir()
    beta.mkdir()
    write_run(alpha, seed=0)
    write_run(beta, seed=1)
    server = ShardedServer(
        manifest_path=alpha,
        settings=ServeSettings(port=0),
        plan=ShardPlan(workers=2, strategy="router"),
        extra_runs={"beta": beta},
        default_run="alpha",
    )
    host, port = server.start()
    try:
        pids = server.worker_pids()
        assert len(pids) == 2 and all(pid > 0 for pid in pids)

        def get(path):
            conn = http.client.HTTPConnection(host, port, timeout=10)
            conn.request("GET", path)
            response = conn.getresponse()
            body = response.read()
            conn.close()
            return response.status, body

        status, body = get("/v1/runs")
        assert status == 200
        payload = json.loads(body)
        assert payload["default_run"] == "alpha"
        assert {run["run_id"] for run in payload["runs"]} == {"alpha", "beta"}
        status, body = get("/v1/run/beta/healthz")
        assert status == 200
        assert json.loads(body)["seed"] == 1
        status, __ = get("/v1/coverage/restaurants?k=1&t=2")
        assert status == 200
    finally:
        server.stop()
    assert server.worker_pids() == []


def test_sharded_server_rejects_colliding_run_ids(tmp_path):
    run = tmp_path / "run"
    run.mkdir()
    write_run(run, seed=0)
    index = build_index(load_manifest(run))
    with pytest.raises(ValueError, match="collides"):
        ShardedServer(
            index=index,
            manifest_path=run,
            settings=ServeSettings(port=0),
            extra_runs={"default": run},
            default_run="default",
        )


def test_sharded_server_builder_is_injectable(tmp_path):
    run = tmp_path / "run"
    run.mkdir()
    write_run(run, seed=0)
    seen = []

    def builder(manifest):
        seen.append(manifest)
        return build_index(manifest)

    server = ShardedServer(
        manifest_path=run,
        settings=ServeSettings(port=0),
        builder=builder,
    )
    assert len(seen) == 1
    assert server.index.identity == build_index(seen[0]).identity


# ----------------------------------------------------------------- RSS


def test_rss_high_water_mb_self_is_positive():
    value = rss_high_water_mb()
    assert value is not None and value > 0


def test_rss_high_water_mb_by_pid_matches_self():
    by_pid = rss_high_water_mb(os.getpid())
    if by_pid is None:
        pytest.skip("/proc not available on this platform")
    assert by_pid == pytest.approx(rss_high_water_mb(), rel=0.25)


def test_peak_rss_mb_over_pids():
    assert peak_rss_mb([]) is None
    assert peak_rss_mb([2**30]) is None  # no such pid
    own = peak_rss_mb([os.getpid()])
    if own is not None:
        assert own > 0
