"""repro.serve.server: routing contract, determinism, deadlines, faults."""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.pipeline.config import ExperimentConfig
from repro.resilience import ENV_FAULTS, clear_plan_cache
from repro.serve import ServeApp, ServeSettings, make_server
from repro.serve.indices import Manifest, build_index

CONFIG = ExperimentConfig(scale="tiny", seed=0).scaled_down(400)

MANIFEST = Manifest(
    config=CONFIG,
    spread_pairs=(("restaurants", "phone"),),
    traffic_sites=("imdb",),
    artifacts=(),
)

FAST_DEADLINE = 0.4


@pytest.fixture(scope="module")
def index():
    return build_index(MANIFEST)


@pytest.fixture()
def app(index):
    instance = ServeApp(index, ServeSettings(deadline_seconds=FAST_DEADLINE))
    yield instance
    instance.close()


@pytest.fixture(autouse=True)
def no_faults(monkeypatch):
    monkeypatch.delenv(ENV_FAULTS, raising=False)
    clear_plan_cache()
    yield
    clear_plan_cache()


def get(app: ServeApp, path: str) -> tuple[int, dict]:
    status, body = app.handle(path)
    return status, json.loads(body)


# -- golden responses under the fixed seed ----------------------------------


def test_healthz_summary(app, index):
    status, payload = get(app, "/healthz")
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["seed"] == 0
    assert payload["index_fingerprint"] == index.identity
    (pair,) = payload["pairs"]
    assert pair["domain"] == "restaurants"
    assert pair["attribute"] == "phone"
    assert pair["n_entities"] == index.pairs[("restaurants", "phone")].n_entities
    assert payload["traffic_sites"] == ["imdb"]


def test_entity_endpoint_matches_index(app, index):
    pair = index.pairs[("restaurants", "phone")]
    status, payload = get(app, "/v1/entity/restaurants/5/sites")
    assert status == 200
    assert payload["entity_index"] == 5
    assert payload["entity"] == pair.entity_label(5)
    expected = [
        pair.incidence.site_hosts[int(s)] for s in pair.sites_of_entity(5)
    ]
    assert payload["sites"] == expected
    assert payload["n_sites"] == len(expected)
    # Catalog-id addressing resolves to the same response.
    __, by_id = get(app, f"/v1/entity/restaurants/{pair.entity_label(5)}/sites")
    assert by_id == payload


def test_site_endpoint_lists_entities(app, index):
    pair = index.pairs[("restaurants", "phone")]
    host = pair.incidence.site_hosts[0]
    status, payload = get(app, f"/v1/site/{host}/entities")
    assert status == 200
    (match,) = payload["matches"]
    expected = [pair.entity_label(int(e)) for e in pair.entities_on_site(0)]
    assert match["entities"] == expected
    assert match["n_entities"] == len(expected)
    assert match["truncated"] is False


def test_coverage_endpoint_matches_table(app, index):
    pair = index.pairs[("restaurants", "phone")]
    status, payload = get(app, "/v1/coverage/restaurants?k=2&t=3")
    assert status == 200
    assert payload["coverage"] == pytest.approx(pair.coverage_at(2, 3), abs=1e-6)
    # Defaults: k=1, t=n_sites.
    __, defaulted = get(app, "/v1/coverage/restaurants")
    assert defaulted["k"] == 1
    assert defaulted["t"] == pair.n_sites


def test_demand_endpoint_matches_table(app, index):
    status, payload = get(app, "/v1/demand/imdb?n_reviews=8&source=browse")
    assert status == 200
    expected = index.demand["imdb"].lookup("browse", 8)
    assert payload["mean_normalized_demand"] == expected["mean_normalized_demand"]
    assert payload["source"] == "browse"


def test_setcover_endpoint_matches_index(app, index):
    pair = index.pairs[("restaurants", "phone")]
    status, payload = get(app, "/v1/setcover/restaurants?budget=5")
    assert status == 200
    direct = pair.set_cover(5)
    assert payload["selected"] == direct["selected"]
    assert payload["gains"] == direct["gains"]
    assert payload["coverage"] == direct["coverage"]


# -- 404/400 contract --------------------------------------------------------


@pytest.mark.parametrize(
    "path",
    [
        "/",
        "/v1/nope",
        "/v1/entity/restaurants/0",  # missing /sites suffix
        "/v1/entity/unknown-domain/0/sites",
        "/v1/entity/restaurants/999999/sites",
        "/v1/site/no-such-host.example/entities",
        "/v1/coverage/unknown-domain",
        "/v1/demand/not-a-traffic-site?n_reviews=1",
    ],
)
def test_unknown_things_404(app, path):
    status, payload = get(app, path)
    assert status == 404
    assert payload["status"] == 404
    assert "error" in payload


@pytest.mark.parametrize(
    "path",
    [
        "/v1/coverage/restaurants?k=999",
        "/v1/coverage/restaurants?t=0",
        "/v1/coverage/restaurants?k=abc",
        "/v1/demand/imdb",  # n_reviews is required
        "/v1/demand/imdb?n_reviews=-1",
        "/v1/demand/imdb?n_reviews=2&source=carrier-pigeon",
        "/v1/setcover/restaurants?budget=0",
        "/v1/setcover/restaurants?budget=100000",
    ],
)
def test_bad_parameters_400(app, path):
    status, payload = get(app, path)
    assert status == 400
    assert payload["status"] == 400


# -- response-cache byte identity -------------------------------------------


PROBE_PATHS = (
    "/v1/entity/restaurants/2/sites",
    "/v1/site/{host}/entities",
    "/v1/coverage/restaurants?k=3&t=5",
    "/v1/demand/imdb?n_reviews=16",
    "/v1/setcover/restaurants?budget=10",
)


def test_responses_byte_identical_with_and_without_rcache(index):
    cached = ServeApp(index, ServeSettings(deadline_seconds=FAST_DEADLINE))
    uncached = ServeApp(
        index,
        ServeSettings(deadline_seconds=FAST_DEADLINE, response_cache_entries=0),
    )
    assert uncached.rcache is None
    host = index.pairs[("restaurants", "phone")].incidence.site_hosts[1]
    try:
        for template in PROBE_PATHS:
            path = template.format(host=host)
            cold = cached.handle(path)
            warm = cached.handle(path)  # now served from the LRU
            bare = uncached.handle(path)
            assert cold == warm == bare
        assert cached.rcache.stats()["hits"] >= len(PROBE_PATHS)
    finally:
        cached.close()
        uncached.close()


def test_concurrent_identical_clients_get_identical_bytes(app):
    path = "/v1/setcover/restaurants?budget=20"
    results: list[tuple[int, bytes]] = [None] * 8  # type: ignore[list-item]

    def worker(slot: int) -> None:
        results[slot] = app.handle(path)

    threads = [
        threading.Thread(target=worker, args=(slot,)) for slot in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert all(status == 200 for status, __ in results)
    assert len({body for __, body in results}) == 1


def test_batcher_coalesces_concurrent_identical_queries(index):
    """N simultaneous identical queries must launch fewer than N computes."""
    app = ServeApp(
        index,
        ServeSettings(deadline_seconds=5.0, response_cache_entries=0),
    )
    barrier = threading.Barrier(6)

    def worker() -> None:
        barrier.wait()
        app.handle("/v1/setcover/restaurants?budget=50")

    threads = [threading.Thread(target=worker) for __ in range(6)]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = app.batcher.stats()
        assert stats["launched"] + stats["coalesced"] == 6
        assert stats["coalesced"] >= 1
        assert stats["inflight"] == 0
    finally:
        app.close()


# -- deadlines and fault injection ------------------------------------------


def test_injected_hang_trips_deadline_not_server(app, monkeypatch):
    monkeypatch.setenv(ENV_FAULTS, "op=hang,task=serve:setcover,times=99,seconds=30")
    clear_plan_cache()
    status, payload = get(app, "/v1/setcover/restaurants?budget=5")
    assert status == 504
    assert "deadline" in payload["error"]
    # The server keeps answering other endpoints afterwards.
    status, __ = get(app, "/v1/coverage/restaurants?k=1&t=1")
    assert status == 200


def test_injected_error_surfaces_as_500(app, monkeypatch):
    monkeypatch.setenv(ENV_FAULTS, "op=error,task=serve:demand,times=99")
    clear_plan_cache()
    status, payload = get(app, "/v1/demand/imdb?n_reviews=4")
    assert status == 500
    assert "injected" in payload["error"]


# -- metrics -----------------------------------------------------------------


def test_metrics_counters_track_requests(app):
    get(app, "/v1/entity/restaurants/1/sites")
    get(app, "/v1/entity/restaurants/1/sites")
    get(app, "/v1/coverage/restaurants?t=0")  # a 400
    get(app, "/no-such-route")  # a 404
    status, payload = get(app, "/metrics")
    assert status == 200
    endpoints = payload["endpoints"]
    assert endpoints["entity"]["requests"] == 2
    assert endpoints["entity"]["latency"]["count"] == 2
    assert endpoints["entity"]["statuses"]["200"] == 2
    assert endpoints["coverage"]["statuses"]["400"] == 1
    assert endpoints["unknown"]["statuses"]["404"] == 1
    assert payload["requests_total"] == 4
    assert payload["deadline_seconds"] == FAST_DEADLINE
    assert payload["batcher"]["inflight"] == 0
    assert payload["index_build_seconds"] >= 0


# -- the HTTP shell ----------------------------------------------------------


def test_http_server_round_trip(index):
    app = ServeApp(
        index, ServeSettings(port=0, deadline_seconds=FAST_DEADLINE)
    )
    server = make_server(app)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        with urllib.request.urlopen(
            f"http://{host}:{port}/healthz", timeout=10
        ) as response:
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
        direct = app.handle("/v1/coverage/restaurants?k=1&t=2")[1]
        with urllib.request.urlopen(
            f"http://{host}:{port}/v1/coverage/restaurants?k=1&t=2", timeout=10
        ) as response:
            assert response.read() == direct
    finally:
        server.shutdown()
        server.server_close()
        thread.join()
        app.close()
