"""Tests for the ISBN extractor (context-window anchoring + checksum)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.entities.ids import (
    format_isbn13,
    isbn10_check_digit,
    isbn10_to_isbn13,
    isbn13_check_digit,
)
from repro.extract.isbn import extract_isbns


def test_extracts_isbn13_with_marker():
    assert extract_isbns("ISBN 9780306406157") == {"9780306406157"}


def test_extracts_hyphenated():
    assert extract_isbns("ISBN: 978-0-306-40615-7") == {"9780306406157"}


def test_extracts_isbn10_normalized_to_13():
    assert extract_isbns("ISBN 0306406152") == {"9780306406157"}


def test_isbn10_with_x_check_digit():
    body = "097522980"
    isbn10 = body + isbn10_check_digit(body)
    assert isbn10.endswith("X")
    found = extract_isbns(f"ISBN {isbn10}")
    assert found == {isbn10_to_isbn13(isbn10)}


def test_requires_isbn_marker_nearby():
    assert extract_isbns("the number 9780306406157 appears") == set()


def test_marker_outside_window_rejected():
    padding = "x" * 100
    text = f"ISBN {padding} 9780306406157"
    assert extract_isbns(text, context_window=40) == set()
    assert extract_isbns(text, context_window=200) == {"9780306406157"}


def test_checksum_failures_rejected():
    assert extract_isbns("ISBN 9780306406150") == set()
    assert extract_isbns("ISBN 0306406153") == set()


def test_marker_case_insensitive():
    assert extract_isbns("isbn 9780306406157") == {"9780306406157"}


def test_multiple_isbns_on_page():
    text = "ISBN 9780306406157 and also ISBN 0306406152"
    assert extract_isbns(text) == {"9780306406157"}  # same book, both forms


def test_negative_window_rejected():
    with pytest.raises(ValueError):
        extract_isbns("ISBN 9780306406157", context_window=-1)


def test_does_not_match_inside_longer_digit_runs():
    assert extract_isbns("ISBN 97803064061579999") == set()


@given(st.integers(min_value=0, max_value=10**9 - 1), st.booleans())
@settings(max_examples=100)
def test_property_generated_isbns_extracted(serial, hyphenate):
    """Checksum-valid generated ISBNs are always found near a marker."""
    body = f"978{serial:09d}"
    isbn13 = body + isbn13_check_digit(body)
    rendered = format_isbn13(isbn13, hyphenate=hyphenate)
    assert extract_isbns(f"ISBN {rendered}") == {isbn13}
