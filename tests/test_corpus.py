"""Tests for the corpus builder (incidence → rendered HTML crawl)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.incidence import BipartiteIncidence
from repro.crawl.store import SqlitePageStore
from repro.webgen.corpus import CorpusBuilder


def incidence_for(db, hosts_entities) -> BipartiteIncidence:
    return BipartiteIncidence.from_site_lists(
        n_entities=len(db), sites=hosts_entities, entity_ids=db.entity_ids
    )


def test_build_phone_corpus(restaurant_db):
    inc = incidence_for(
        restaurant_db,
        [("agg.example", list(range(25))), ("blog.example", [0, 1])],
    )
    corpus = CorpusBuilder(restaurant_db, "phone", entities_per_page=10, seed=1).build(
        inc
    )
    # 25 entities at 10/page -> 3 pages; blog -> 1 page; plus noise
    assert corpus.cache.n_pages() >= 4
    assert set(corpus.cache.hosts()) >= {"agg.example", "blog.example"}
    assert corpus.truth.n_edges == 27
    assert corpus.attribute == "phone"


def test_homepage_corpus_drops_unrenderable(restaurant_db):
    no_homepage = [
        restaurant_db.index_of(e.entity_id)
        for e in restaurant_db
        if "homepage" not in e.keys
    ]
    assert no_homepage, "fixture should contain homepage-less listings"
    inc = incidence_for(
        restaurant_db, [("links.example", no_homepage[:2] + [0, 1])]
    )
    corpus = CorpusBuilder(restaurant_db, "homepage", seed=2).build(inc)
    renderable = [
        i
        for i in [0, 1]
        if "homepage" in restaurant_db.get(restaurant_db.entity_ids[i]).keys
    ]
    assert corpus.truth.n_edges == len(renderable)


def test_review_corpus_page_counts(restaurant_db):
    inc = BipartiteIncidence.from_site_lists(
        n_entities=len(restaurant_db),
        sites=[("rev.example", [0, 1])],
        multiplicities=[[3, 2]],
        entity_ids=restaurant_db.entity_ids,
    )
    corpus = CorpusBuilder(
        restaurant_db, "reviews", noise_page_rate=0.0, seed=3
    ).build(inc)
    assert corpus.cache.n_pages() == 5  # one page per review
    assert corpus.truth.total_pages() == 5


def test_noise_rate_zero(restaurant_db):
    inc = incidence_for(restaurant_db, [("a.example", [0])])
    corpus = CorpusBuilder(
        restaurant_db, "phone", noise_page_rate=0.0, seed=4
    ).build(inc)
    assert corpus.n_noise_pages == 0


def test_noise_rate_positive(restaurant_db):
    inc = incidence_for(restaurant_db, [(f"s{i}.example", [0, 1]) for i in range(30)])
    corpus = CorpusBuilder(
        restaurant_db, "phone", noise_page_rate=1.0, seed=5
    ).build(inc)
    assert corpus.n_noise_pages > 0


def test_book_corpus(book_db):
    inc = incidence_for(book_db, [("catalog.example", list(range(10)))])
    corpus = CorpusBuilder(book_db, "isbn", seed=6).build(inc)
    assert corpus.truth.n_edges == 10


def test_sqlite_store_backend(restaurant_db):
    inc = incidence_for(restaurant_db, [("a.example", [0, 1, 2])])
    store = SqlitePageStore(":memory:")
    corpus = CorpusBuilder(restaurant_db, "phone", seed=7).build(inc, store=store)
    assert corpus.cache.store is store
    assert len(store) >= 1


def test_validation(restaurant_db):
    with pytest.raises(ValueError):
        CorpusBuilder(restaurant_db, "nonsense")
    with pytest.raises(ValueError):
        CorpusBuilder(restaurant_db, "phone", entities_per_page=0)
    with pytest.raises(ValueError):
        CorpusBuilder(restaurant_db, "phone", review_purity=0.0)
    mismatched = BipartiteIncidence.from_site_lists(n_entities=5, sites=[])
    with pytest.raises(ValueError, match="disagree"):
        CorpusBuilder(restaurant_db, "phone").build(mismatched)


def test_deterministic(restaurant_db):
    inc = incidence_for(restaurant_db, [("a.example", [0, 1, 2])])
    a = CorpusBuilder(restaurant_db, "phone", seed=8).build(inc)
    b = CorpusBuilder(restaurant_db, "phone", seed=8).build(inc)
    pages_a = [p.content for p in a.cache.scan_pages()]
    pages_b = [p.content for p in b.cache.scan_pages()]
    assert pages_a == pages_b
