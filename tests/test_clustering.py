"""Tests for TF-IDF, k-means, and site clustering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.kmeans import KMeans
from repro.clustering.sites import SiteClusterer, cluster_purity
from repro.clustering.tfidf import TfidfVectorizer


class TestTfidf:
    def test_fit_transform_shape(self):
        docs = ["apple banana", "banana cherry", "apple cherry date"]
        matrix = TfidfVectorizer().fit_transform(docs)
        assert matrix.shape[0] == 3
        assert matrix.shape[1] <= 4

    def test_rows_l2_normalized(self):
        docs = ["alpha beta gamma", "alpha alpha beta"]
        matrix = TfidfVectorizer().fit_transform(docs)
        norms = np.linalg.norm(matrix, axis=1)
        assert np.allclose(norms, 1.0)

    def test_rare_terms_weigh_more(self):
        docs = ["common rare", "common other", "common thing"]
        vectorizer = TfidfVectorizer().fit(docs)
        matrix = vectorizer.transform(["common rare"])
        vocab = vectorizer.vocabulary
        assert matrix[0, vocab["rare"]] > matrix[0, vocab["common"]]

    def test_max_features_cap(self):
        letters = "abcdefghijklmnopqrstuvwxyz"
        docs = [f"{ch}{ch}{ch} shared" for ch in letters]
        vectorizer = TfidfVectorizer(max_features=5).fit(docs)
        assert len(vectorizer.vocabulary) == 5
        assert "shared" in vectorizer.vocabulary  # most frequent kept

    def test_min_df_filter(self):
        docs = ["a b", "a c", "a d"]
        vectorizer = TfidfVectorizer(min_df=2).fit(docs)
        assert set(vectorizer.vocabulary) == {"a"}

    def test_unknown_tokens_ignored(self):
        vectorizer = TfidfVectorizer().fit(["alpha beta"])
        matrix = vectorizer.transform(["zzz unknown"])
        assert np.all(matrix == 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TfidfVectorizer(max_features=0)
        with pytest.raises(ValueError):
            TfidfVectorizer().fit([])
        with pytest.raises(RuntimeError):
            TfidfVectorizer().transform(["x"])


class TestKMeans:
    def blobs(self, seed=0):
        rng = np.random.default_rng(seed)
        a = rng.normal(loc=(0, 0), scale=0.2, size=(40, 2))
        b = rng.normal(loc=(5, 5), scale=0.2, size=(40, 2))
        return np.vstack([a, b])

    def test_separates_blobs(self):
        points = self.blobs()
        labels = KMeans(n_clusters=2, seed=1).fit(points)
        assert len(set(labels[:40].tolist())) == 1
        assert len(set(labels[40:].tolist())) == 1
        assert labels[0] != labels[40]

    def test_predict_consistent_with_fit(self):
        points = self.blobs(seed=2)
        model = KMeans(n_clusters=2, seed=3)
        labels = model.fit(points)
        assert np.array_equal(model.predict(points), labels)

    def test_inertia_decreases_with_k(self):
        points = self.blobs(seed=4)
        model2 = KMeans(n_clusters=2, seed=5)
        model4 = KMeans(n_clusters=4, seed=5)
        model2.fit(points)
        model4.fit(points)
        assert model4.inertia <= model2.inertia + 1e-9

    def test_single_cluster(self):
        points = self.blobs(seed=6)
        labels = KMeans(n_clusters=1, seed=7).fit(points)
        assert set(labels.tolist()) == {0}

    def test_validation(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0)
        model = KMeans(n_clusters=3)
        with pytest.raises(ValueError):
            model.fit(np.zeros((2, 2)))  # fewer points than clusters
        with pytest.raises(RuntimeError):
            KMeans(n_clusters=2).predict(np.zeros((1, 2)))

    def test_deterministic_given_seed(self):
        points = self.blobs(seed=8)
        a = KMeans(n_clusters=2, seed=9).fit(points)
        b = KMeans(n_clusters=2, seed=9).fit(points)
        assert np.array_equal(a, b)


class TestSiteClustering:
    @pytest.fixture(scope="class")
    def mixed_cache(self):
        from repro.crawl.cache import WebCache
        from repro.crawl.store import MemoryPageStore, Page
        from repro.entities.books import generate_books
        from repro.entities.business import generate_listings
        from repro.webgen.html import PageRenderer

        renderer = PageRenderer(21)
        listings = generate_listings("restaurants", 40, seed=22)
        books = generate_books(40, seed=23)
        store = MemoryPageStore()
        truth = {}
        for i in range(6):
            host = f"food{i}.example.com"
            chunk = listings[i * 6:(i + 1) * 6]
            store.add(Page.from_url(f"http://{host}/p", renderer.listing_page(host, chunk)))
            truth[host] = "restaurants"
        for i in range(6):
            host = f"reads{i}.example.com"
            chunk = books[i * 6:(i + 1) * 6]
            store.add(Page.from_url(f"http://{host}/p", renderer.book_page(host, chunk)))
            truth[host] = "books"
        return WebCache(store), truth

    def test_host_documents(self, mixed_cache):
        cache, __ = mixed_cache
        hosts, documents = SiteClusterer().host_documents(cache)
        assert len(hosts) == 12
        assert all(documents)

    def test_clusters_separate_domains(self, mixed_cache):
        cache, truth = mixed_cache
        clusters = SiteClusterer(n_clusters=2, seed=24).cluster(cache)
        assert cluster_purity(clusters, truth) >= 0.9

    def test_assignment_mapping(self, mixed_cache):
        cache, __ = mixed_cache
        clusters = SiteClusterer(n_clusters=2, seed=25).cluster(cache)
        assignment = clusters.assignment()
        assert set(assignment) == set(clusters.hosts)

    def test_too_few_hosts_rejected(self, mixed_cache):
        cache, __ = mixed_cache
        with pytest.raises(ValueError):
            SiteClusterer(n_clusters=50).cluster(cache)

    def test_purity_validation(self, mixed_cache):
        cache, __ = mixed_cache
        clusters = SiteClusterer(n_clusters=2, seed=26).cluster(cache)
        with pytest.raises(ValueError):
            cluster_purity(clusters, {})
