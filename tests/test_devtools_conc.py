"""Tests for the CONC concurrency rules and the IMP001 import budget.

Fixture-driven: each rule gets a minimal firing case, a clean case, and
where relevant the suppression/annotation path.  The final tests are
regression guards for the real violations this analysis surfaced in the
repo — re-introducing the old eager pipeline import under the serve
tier must fail IMP001 with the committed config.
"""

from pathlib import Path

from repro.devtools.config import LintConfig, load_config
from repro.devtools.lint import check_project, check_source
from repro.devtools.registry import all_rules

REPO_ROOT = Path(__file__).resolve().parent.parent


def rules_of(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------- CONC001


THREADED_COUNTER = '''"""M."""
import threading

__all__ = ["Worker"]


class Worker:
    """W."""

    def __init__(self):
        """Init."""
        self._lock = threading.Lock()
        self._count = 0
        self._thread = threading.Thread(target=self._run)

    def _run(self):
        """Loop."""
        while True:
            self._bump()
            self._drop()

    def _bump(self):
        """Guarded write."""
        with self._lock:
            self._count += 1

    def _drop(self):
        """Unguarded write to the same attribute."""
        self._count -= 1
'''


def test_conc001_flags_unguarded_write_on_thread_path():
    findings = check_project(
        {"src/repro/serve/fixture.py": THREADED_COUNTER}, select=["CONC001"]
    )
    assert rules_of(findings) == ["CONC001"]
    assert findings[0].line == 29  # the self._count -= 1 in _drop
    assert "_count" in findings[0].message
    assert "self._lock" in findings[0].message


def test_conc001_clean_when_every_write_is_guarded():
    consistent = THREADED_COUNTER.replace(
        '        """Unguarded write to the same attribute."""\n'
        "        self._count -= 1\n",
        '        """Guarded write."""\n'
        "        with self._lock:\n"
        "            self._count -= 1\n",
    )
    assert check_project(
        {"src/repro/serve/fixture.py": consistent}, select=["CONC001"]
    ) == []


def test_conc001_clean_when_class_never_locks():
    # A single-writer design with no lock at all is legal: CONC001 only
    # fires on *inconsistent* locking, never on its absence.
    no_lock = THREADED_COUNTER.replace(
        "        self._lock = threading.Lock()\n", ""
    ).replace(
        '        """Guarded write."""\n'
        "        with self._lock:\n"
        "            self._count += 1\n",
        '        """Unguarded, like every other write."""\n'
        "        self._count += 1\n",
    )
    assert check_project(
        {"src/repro/serve/fixture.py": no_lock}, select=["CONC001"]
    ) == []


def test_conc001_guarded_by_annotation_declares_the_guard():
    annotated = '''"""M."""
import threading

__all__ = ["Box"]


class Box:
    """B."""

    def __init__(self):
        """Init."""
        self._lock = threading.Lock()
        self._items = []  # guarded-by: _lock
        self._thread = threading.Thread(target=self._run)

    def _run(self):
        """Writes without ever holding the declared guard."""
        self._items.append(1)
'''
    findings = check_project(
        {"src/repro/serve/fixture.py": annotated}, select=["CONC001"]
    )
    assert rules_of(findings) == ["CONC001"]
    assert "_items" in findings[0].message


def test_conc001_ignores_unreachable_methods():
    # Same inconsistent locking, but nothing spawns a thread: the
    # unguarded write is not on any concurrent path, so no finding.
    sequential = THREADED_COUNTER.replace(
        "        self._thread = threading.Thread(target=self._run)\n", ""
    )
    assert check_project(
        {"src/repro/serve/fixture.py": sequential}, select=["CONC001"]
    ) == []


# ---------------------------------------------------------------- CONC002


def test_conc002_flags_bare_acquire():
    findings = check_source(
        '"""M."""\nimport threading\n\n__all__ = []\n\n'
        "_lock = threading.Lock()\n\n\n"
        "def bad():\n"
        '    """B."""\n'
        "    _lock.acquire()\n"
        "    return 1\n",
        select=["CONC002"],
    )
    assert rules_of(findings) == ["CONC002"]
    assert "_lock.acquire()" in findings[0].message


def test_conc002_clean_with_try_finally_release():
    findings = check_source(
        '"""M."""\nimport threading\n\n__all__ = []\n\n'
        "_lock = threading.Lock()\n\n\n"
        "def good():\n"
        '    """G."""\n'
        "    _lock.acquire()\n"
        "    try:\n"
        "        return 1\n"
        "    finally:\n"
        "        _lock.release()\n",
        select=["CONC002"],
    )
    assert findings == []


def test_conc002_ignores_non_lock_receivers():
    findings = check_source(
        '"""M."""\n\n__all__ = []\n\n\n'
        "def ok(conn):\n"
        '    """Not a lock: no release obligation inferred."""\n'
        "    conn.acquire()\n",
        select=["CONC002"],
    )
    assert findings == []


# ---------------------------------------------------------------- CONC003


FORKING_SERVER = '''"""M."""
import socket
from multiprocessing import Process

__all__ = ["Server"]


class Server:
    """S."""

    def __init__(self):
        """Init."""
        self._channels = []

    def start(self):
        """Create sockets pre-fork, then fork workers."""
        parent, child = socket.socketpair()
        self._channels.append(parent)
        process = Process(target=self._worker)
        process.start()

    def _worker(self):
        """Fork-worker: touches the inherited pre-fork sockets."""
        for channel in self._channels:
            channel.close()
'''


def test_conc003_flags_prefork_socket_touched_in_worker():
    findings = check_project(
        {"src/repro/serve/fixture.py": FORKING_SERVER}, select=["CONC003"]
    )
    assert rules_of(findings) == ["CONC003"]
    assert "_channels" in findings[0].message
    assert "fork-worker" in findings[0].message


def test_conc003_suppression_with_justification_is_honoured():
    justified = FORKING_SERVER.replace(
        "        for channel in self._channels:\n",
        "        # Deliberate fork-fd hygiene: close inherited ends.\n"
        "        for channel in self._channels:  # reprolint: disable=CONC003\n",
    )
    assert check_project(
        {"src/repro/serve/fixture.py": justified}, select=["CONC003"]
    ) == []


def test_conc003_clean_when_resource_created_in_worker():
    postfork = '''"""M."""
import socket
from multiprocessing import Process

__all__ = ["Server"]


class Server:
    """S."""

    def start(self):
        """Fork first; workers make their own sockets."""
        process = Process(target=self._worker)
        process.start()

    def _worker(self):
        """Post-fork resource creation is safe."""
        self._sock = socket.socket()
        self._sock.close()
'''
    assert check_project(
        {"src/repro/serve/fixture.py": postfork}, select=["CONC003"]
    ) == []


# ---------------------------------------------------------------- CONC004


def test_conc004_flags_sleep_under_lock():
    findings = check_source(
        '"""M."""\nimport threading\nimport time\n\n__all__ = ["C"]\n\n\n'
        "class C:\n"
        '    """C."""\n\n'
        "    def __init__(self):\n"
        '        """Init."""\n'
        "        self._lock = threading.Lock()\n\n"
        "    def slow(self):\n"
        '        """Sleeps while the whole class is locked out."""\n'
        "        with self._lock:\n"
        "            time.sleep(1.0)\n",
        select=["CONC004"],
    )
    assert rules_of(findings) == ["CONC004"]
    assert "time.sleep" in findings[0].message


def test_conc004_clean_when_sleep_is_outside_the_lock():
    findings = check_source(
        '"""M."""\nimport threading\nimport time\n\n__all__ = ["C"]\n\n\n'
        "class C:\n"
        '    """C."""\n\n'
        "    def __init__(self):\n"
        '        """Init."""\n'
        "        self._lock = threading.Lock()\n\n"
        "    def slow(self):\n"
        '        """Lock released before the slow part."""\n'
        "        with self._lock:\n"
        "            value = 1\n"
        "        time.sleep(value)\n",
        select=["CONC004"],
    )
    assert findings == []


# ---------------------------------------------------------------- IMP001


BUDGET_CONFIG = LintConfig(
    import_costs=(("heavy", 30.0), ("repro.pipeline.runall", 11.0)),
    import_budgets=(("repro.serve", 8.0),),
)


def test_imp001_flags_overbudget_module_level_import():
    findings = check_source(
        '"""M."""\nimport heavy\n\n__all__ = []\n',
        relpath="src/repro/serve/fixture.py",
        select=["IMP001"],
        config=BUDGET_CONFIG,
    )
    assert rules_of(findings) == ["IMP001"]
    assert "~30 MB" in findings[0].message
    assert "repro.serve budget of 8 MB" in findings[0].message


def test_imp001_cost_prefix_covers_submodules():
    findings = check_source(
        '"""M."""\nfrom heavy.sub.deep import thing\n\n__all__ = []\n',
        relpath="src/repro/serve/fixture.py",
        select=["IMP001"],
        config=BUDGET_CONFIG,
    )
    assert rules_of(findings) == ["IMP001"]


def test_imp001_lazy_function_import_is_free():
    findings = check_source(
        '"""M."""\n\n__all__ = []\n\n\n'
        "def use():\n"
        '    """Lazy: pays only when called."""\n'
        "    import heavy\n"
        "    return heavy\n",
        relpath="src/repro/serve/fixture.py",
        select=["IMP001"],
        config=BUDGET_CONFIG,
    )
    assert findings == []


def test_imp001_type_checking_imports_are_free():
    findings = check_source(
        '"""M."""\nfrom typing import TYPE_CHECKING\n\n__all__ = []\n\n'
        "if TYPE_CHECKING:\n"
        "    import heavy\n",
        relpath="src/repro/serve/fixture.py",
        select=["IMP001"],
        config=BUDGET_CONFIG,
    )
    assert findings == []


def test_imp001_outside_budgeted_packages_is_free():
    findings = check_source(
        '"""M."""\nimport heavy\n\n__all__ = []\n',
        relpath="src/repro/pipeline/fixture.py",
        select=["IMP001"],
        config=BUDGET_CONFIG,
    )
    assert findings == []


# --------------------------------------------- regression: the real bugs


def test_regression_eager_runall_import_in_serve_fails_imp001():
    """Re-introducing the pre-PR eager import must fail lint in CI.

    ``serve/reload.py`` used to pull ``MANIFEST_NAME`` from
    ``repro.pipeline.runall``, dragging the whole batch stack into every
    fork worker.  With the committed pyproject config, that exact import
    under the serve tier is an IMP001 violation.
    """
    config = load_config(REPO_ROOT / "pyproject.toml")
    findings = check_source(
        '"""M."""\nfrom repro.pipeline.runall import MANIFEST_NAME\n\n'
        "__all__ = []\n",
        relpath="src/repro/serve/reload.py",
        select=["IMP001"],
        config=config,
    )
    assert rules_of(findings) == ["IMP001"]
    assert "repro.pipeline.runall" in findings[0].message
    # The fixed spelling — the manifest contract lives in the light
    # config module — stays within budget.
    assert check_source(
        '"""M."""\nfrom repro.pipeline.config import MANIFEST_NAME\n\n'
        "__all__ = []\n",
        relpath="src/repro/serve/reload.py",
        select=["IMP001"],
        config=config,
    ) == []


def test_regression_eager_experiments_import_in_serve_fails_imp001():
    config = load_config(REPO_ROOT / "pyproject.toml")
    findings = check_source(
        '"""M."""\nfrom repro.pipeline.experiments import spread_incidence\n\n'
        "__all__ = []\n",
        relpath="src/repro/serve/indices.py",
        select=["IMP001"],
        config=config,
    )
    assert rules_of(findings) == ["IMP001"]


# ------------------------------------------------------------- plumbing


def test_heavy_marking_matches_scope():
    # CONC001/CONC003 are whole-project analyses skipped by
    # --changed-only; the per-module rules must stay cheap and always-on.
    rules = all_rules()
    assert rules["CONC001"].heavy and rules["CONC001"].scope == "project"
    assert rules["CONC003"].heavy and rules["CONC003"].scope == "project"
    assert not rules["CONC002"].heavy and rules["CONC002"].scope == "module"
    assert not rules["CONC004"].heavy and rules["CONC004"].scope == "module"
    assert not rules["IMP001"].heavy and rules["IMP001"].scope == "module"


def test_committed_config_enables_conc_on_the_serve_path():
    config = load_config(REPO_ROOT / "pyproject.toml")
    for relpath in (
        "src/repro/serve/server.py",
        "src/repro/perf/history.py",
    ):
        selectors = config.selectors_for(relpath)
        assert "CONC" in selectors, (relpath, selectors)
        assert "IMP" in selectors, (relpath, selectors)
    assert config.import_budget("repro.serve.sharding") is not None
    assert config.import_cost("repro.pipeline.experiments") is not None
