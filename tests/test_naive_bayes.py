"""Tests for the from-scratch Naive Bayes classifier."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.extract.naive_bayes import NaiveBayesClassifier, tokenize
from repro.webgen.text import ReviewTextGenerator


def test_tokenize():
    assert tokenize("Hello, World! it's GREAT.") == ["hello", "world", "it's", "great"]
    assert tokenize("123 456") == []


def simple_classifier() -> NaiveBayesClassifier:
    documents = [
        "loved the food amazing service",
        "delicious pasta would recommend",
        "terrible experience will not return",
        "hours monday friday parking directions",
        "accepts credit cards contact owner",
        "business hours and directions listed",
    ]
    labels = [True, True, True, False, False, False]
    return NaiveBayesClassifier().fit(documents, labels)


def test_separates_obvious_cases():
    clf = simple_classifier()
    assert clf.predict("the food was amazing and delicious") is True
    assert clf.predict("parking hours and directions") is False


def test_predict_proba_bounds_and_consistency():
    clf = simple_classifier()
    for text in ("amazing delicious food", "hours parking credit"):
        p = clf.predict_proba(text)
        assert 0.0 <= p <= 1.0
        assert (p >= 0.5) == clf.predict(text)


def test_log_posterior_includes_prior():
    clf = simple_classifier()
    scores = clf.log_posterior("")
    assert scores[True] == pytest.approx(math.log(0.5))
    assert scores[False] == pytest.approx(math.log(0.5))


def test_unknown_tokens_ignored():
    clf = simple_classifier()
    base = clf.log_posterior("amazing")
    with_unknown = clf.log_posterior("amazing zzzzunknownzzzz")
    assert base == with_unknown


def test_accuracy_metric():
    clf = simple_classifier()
    docs = ["amazing delicious", "parking hours"]
    assert clf.accuracy(docs, [True, False]) == 1.0
    assert clf.accuracy(docs, [False, True]) == 0.0


def test_accuracy_empty_set_rejected():
    clf = simple_classifier()
    with pytest.raises(ValueError):
        clf.accuracy([], [])


def test_fit_validation():
    with pytest.raises(ValueError):
        NaiveBayesClassifier().fit([], [])
    with pytest.raises(ValueError):
        NaiveBayesClassifier().fit(["a"], [True])  # single class
    with pytest.raises(ValueError):
        NaiveBayesClassifier().fit(["a", "b"], [True])  # misaligned
    with pytest.raises(ValueError):
        NaiveBayesClassifier(smoothing=0.0)


def test_unfitted_usage_rejected():
    clf = NaiveBayesClassifier()
    with pytest.raises(RuntimeError):
        clf.predict("anything")


def test_vocabulary_size():
    clf = simple_classifier()
    assert clf.vocabulary_size > 10


def test_learns_synthetic_review_distinction():
    """On the generator's own text classes, held-out accuracy is high
    but below perfect — the classes share vocabulary by design."""
    train = ReviewTextGenerator(1).labeled_corpus(400)
    test = ReviewTextGenerator(2).labeled_corpus(200)
    clf = NaiveBayesClassifier().fit(
        [t for t, _ in train], [l for _, l in train]
    )
    accuracy = clf.accuracy([t for t, _ in test], [l for _, l in test])
    assert accuracy > 0.9


@given(st.floats(min_value=0.1, max_value=5.0))
@settings(max_examples=20)
def test_property_smoothing_never_breaks_prediction(smoothing):
    clf = NaiveBayesClassifier(smoothing=smoothing).fit(
        ["good great fine", "bad awful poor"], [True, False]
    )
    assert clf.predict("good great") is True
    assert clf.predict("bad awful") is False
