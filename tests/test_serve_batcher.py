"""Concurrency stress test for the serve tier's MicroBatcher.

The batcher is the serve tier's single-flight layer: all of its state
(``_inflight``, ``_launched``, ``_coalesced``) is guarded by one lock,
and the CONC001 analysis in reprolint checks that discipline statically.
This test checks it dynamically: many threads hammering a small key
space with a seeded schedule must never observe torn accounting.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.serve.batcher import MicroBatcher

THREADS = 8
SUBMITS_PER_THREAD = 200
KEYS = [f"key-{n}" for n in range(5)]


def test_seeded_multithread_stress():
    batcher = MicroBatcher()
    stats_snapshots = []
    futures = []
    futures_lock = threading.Lock()
    start = threading.Barrier(THREADS)

    def compute(key):
        def run():
            # Long enough that concurrent submits for the same key
            # really do land while the leader is in flight.
            time.sleep(0.0005)
            return ("result", key)

        return run

    def hammer(thread_index):
        rng = np.random.default_rng(1000 + thread_index)
        start.wait()
        mine = []
        for _ in range(SUBMITS_PER_THREAD):
            key = KEYS[int(rng.integers(len(KEYS)))]
            mine.append((key, batcher.submit(key, pool, compute(key))))
            if rng.random() < 0.1:
                stats_snapshots.append(batcher.stats())
        with futures_lock:
            futures.extend(mine)

    with ThreadPoolExecutor(max_workers=4) as pool:
        workers = [
            threading.Thread(target=hammer, args=(index,))
            for index in range(THREADS)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        # Every future must settle with the right key's result.
        for key, future in futures:
            assert future.result(timeout=30) == ("result", key)

    final = batcher.stats()
    total = THREADS * SUBMITS_PER_THREAD
    assert len(futures) == total
    # Accounting is conserved: every submit either launched or coalesced.
    assert final["launched"] + final["coalesced"] == total
    # With 1600 submits over 5 keys there must have been real sharing,
    # and at least one launch per key.
    assert final["launched"] >= len(KEYS)
    assert final["coalesced"] > 0
    # All work drained: nothing left in flight once every future settled.
    assert final["inflight"] == 0
    # No snapshot ever saw torn state: inflight bounded by the key
    # space, counters monotone and never negative.
    assert all(0 <= snap["inflight"] <= len(KEYS) for snap in stats_snapshots)
    assert all(snap["launched"] >= 0 for snap in stats_snapshots)
    assert all(snap["coalesced"] >= 0 for snap in stats_snapshots)


def test_failed_query_settles_and_deregisters():
    batcher = MicroBatcher()

    def boom():
        raise RuntimeError("query failed")

    with ThreadPoolExecutor(max_workers=1) as pool:
        future = batcher.submit("k", pool, boom)
        try:
            future.result(timeout=10)
        except RuntimeError as exc:
            assert "query failed" in str(exc)
        else:  # pragma: no cover - the assert documents intent
            raise AssertionError("expected the query error to propagate")
    # The failed flight must not wedge the key: it deregisters, and a
    # retry launches fresh rather than sharing the dead future.
    assert batcher.stats()["inflight"] == 0
    with ThreadPoolExecutor(max_workers=1) as pool:
        retry = batcher.submit("k", pool, lambda: 42)
        assert retry.result(timeout=10) == 42
    assert batcher.stats()["launched"] == 2
