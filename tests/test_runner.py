"""Integration tests: render → crawl → extract recovers the truth."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.incidence import BipartiteIncidence
from repro.extract.runner import ExtractionRunner
from repro.webgen.corpus import CorpusBuilder


def build_incidence(db, n_sites=8, entities_per_site=12, seed=0):
    rng = np.random.default_rng(seed)
    sites = []
    for s in range(n_sites):
        entities = rng.choice(
            len(db), size=min(entities_per_site, len(db)), replace=False
        )
        sites.append((f"site{s}.example", entities.tolist()))
    return BipartiteIncidence.from_site_lists(
        n_entities=len(db), sites=sites, entity_ids=db.entity_ids
    )


def edges_as_set(inc):
    edges = set()
    for s in range(inc.n_sites):
        for e in inc.site_entities(s).tolist():
            edges.add((inc.site_hosts[s], e))
    return edges


@pytest.mark.parametrize("attribute", ["phone", "isbn"])
def test_exact_recovery(attribute, restaurant_db, book_db):
    db = restaurant_db if attribute == "phone" else book_db
    inc = build_incidence(db, seed=1)
    corpus = CorpusBuilder(db, attribute, seed=2).build(inc)
    runner = ExtractionRunner(db, attribute)
    extracted = runner.run(corpus.cache)
    assert edges_as_set(extracted) == edges_as_set(corpus.truth)
    assert runner.stats.pages_scanned == corpus.cache.n_pages()
    assert runner.stats.pages_with_matches > 0


def test_homepage_recovery(restaurant_db):
    inc = build_incidence(restaurant_db, seed=3)
    corpus = CorpusBuilder(restaurant_db, "homepage", seed=4).build(inc)
    extracted = ExtractionRunner(restaurant_db, "homepage").run(corpus.cache)
    assert edges_as_set(extracted) == edges_as_set(corpus.truth)


def test_review_recovery_is_noisy_but_high(restaurant_db):
    """Reviews go through the classifier, so recovery is approximate."""
    inc = BipartiteIncidence.from_site_lists(
        n_entities=len(restaurant_db),
        sites=[(f"rev{s}.example", list(range(s * 10, s * 10 + 10))) for s in range(5)],
        multiplicities=[[2] * 10 for _ in range(5)],
        entity_ids=restaurant_db.entity_ids,
    )
    corpus = CorpusBuilder(
        restaurant_db, "reviews", review_purity=0.9, seed=5
    ).build(inc)
    extracted = ExtractionRunner(restaurant_db, "reviews").run(
        corpus.cache, with_multiplicity=True
    )
    truth_edges = edges_as_set(corpus.truth)
    found_edges = edges_as_set(extracted)
    recall = len(found_edges & truth_edges) / len(truth_edges)
    assert recall > 0.7
    # no hallucinated entities outside the rendered ones
    assert found_edges <= truth_edges


def test_noise_pages_do_not_create_edges(restaurant_db):
    inc = build_incidence(restaurant_db, n_sites=4, seed=6)
    corpus = CorpusBuilder(
        restaurant_db, "phone", noise_page_rate=2.0, seed=7
    ).build(inc)
    assert corpus.n_noise_pages > 0
    extracted = ExtractionRunner(restaurant_db, "phone").run(corpus.cache)
    assert edges_as_set(extracted) == edges_as_set(corpus.truth)


def test_hit_rate_below_one_with_noise(restaurant_db):
    inc = build_incidence(restaurant_db, n_sites=4, seed=8)
    corpus = CorpusBuilder(
        restaurant_db, "phone", noise_page_rate=2.0, seed=9
    ).build(inc)
    runner = ExtractionRunner(restaurant_db, "phone")
    runner.run(corpus.cache)
    assert 0.0 < runner.stats.hit_rate <= 1.0


def test_unsupported_attribute_rejected(restaurant_db):
    with pytest.raises(ValueError):
        ExtractionRunner(restaurant_db, "color")


def test_multiplicity_output(restaurant_db):
    inc = build_incidence(restaurant_db, n_sites=2, seed=10)
    corpus = CorpusBuilder(restaurant_db, "phone", seed=11).build(inc)
    extracted = ExtractionRunner(restaurant_db, "phone").run(
        corpus.cache, with_multiplicity=True
    )
    assert extracted.multiplicity is not None
    assert extracted.multiplicity.min() >= 1
