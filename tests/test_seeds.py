"""Tests for the seed-sensitivity study."""

from __future__ import annotations

import numpy as np
import pytest

from repro.discovery.seeds import (
    seed_origin_comparison,
    seed_success_probability,
)
from repro.webgen.profiles import get_profile


@pytest.fixture(scope="module")
def incidence():
    return get_profile("restaurants", "phone").generate("tiny", seed=13)


def test_success_rises_with_seed_size(incidence):
    study = seed_success_probability(
        incidence, seed_sizes=(1, 3, 8), trials=15, rng=1
    )
    assert study.success_rate[-1] >= study.success_rate[0]
    assert study.success_rate[-1] > 0.9  # the paper's "all but surely"


def test_matches_analytic_prediction(incidence):
    study = seed_success_probability(
        incidence, seed_sizes=(1, 2, 5), trials=40, rng=2
    )
    # empirical success should track 1-(1-p)^s within sampling noise
    assert np.all(np.abs(study.success_rate - study.predicted) < 0.25)


def test_mean_coverage_reported(incidence):
    study = seed_success_probability(
        incidence, seed_sizes=(2,), trials=10, rng=3
    )
    assert 0.0 < study.mean_coverage[0] <= 1.0


def test_validation(incidence):
    with pytest.raises(ValueError):
        seed_success_probability(incidence, trials=0)
    with pytest.raises(ValueError):
        seed_success_probability(incidence, success_threshold=0.0)
    with pytest.raises(ValueError):
        seed_success_probability(incidence, seed_sizes=(0,), trials=2)


def test_origin_does_not_matter(incidence):
    """Connectivity makes head and tail seeds equally effective."""
    comparison = seed_origin_comparison(incidence, seed_size=3, trials=10, rng=4)
    assert set(comparison) == {"head", "tail", "uniform"}
    values = list(comparison.values())
    assert max(values) - min(values) < 0.1


def test_origin_validation(incidence):
    with pytest.raises(ValueError):
        seed_origin_comparison(incidence, seed_size=0)
