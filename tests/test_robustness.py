"""Adversarial-input robustness: extractors must degrade, not crash.

Real crawls contain broken markup, unicode soup, absurdly long tokens,
and adversarial near-matches.  These tests feed such pages through
every extractor and assert two things: no exceptions, and no false
entity matches.
"""

from __future__ import annotations

import pytest

from repro.extract.homepages import extract_homepages
from repro.extract.isbn import extract_isbns
from repro.extract.naive_bayes import NaiveBayesClassifier, tokenize
from repro.extract.phones import extract_phones
from repro.extract.reviews import strip_tags
from repro.extract.wrappers import WrapperInducer
from repro.linking.similarity import name_similarity

ADVERSARIAL_PAGES = [
    "",  # empty
    "\x00\x01\x02 binary junk \xff",
    "<html>" + "<div>" * 200 + "deep nesting" + "</div>" * 200,
    "<a href='",  # truncated mid-attribute
    "<!-- <a href='http://comment.example/'>commented out</a> -->",
    "plain text with no markup at all " * 50,
    "日本語のテキスト 电话 ☎️ +1 (415) 555-0123 📞",  # unicode + real phone
    "<p>" + "9" * 10_000 + "</p>",  # one enormous digit run
    "ISBN " + "ISBN " * 500,  # marker spam with no numbers
    "<a href='http://[malformed'>bad url</a>",
]


@pytest.mark.parametrize("page", ADVERSARIAL_PAGES, ids=range(len(ADVERSARIAL_PAGES)))
def test_phone_extractor_never_crashes(page):
    result = extract_phones(page)
    assert isinstance(result, set)


@pytest.mark.parametrize("page", ADVERSARIAL_PAGES, ids=range(len(ADVERSARIAL_PAGES)))
def test_isbn_extractor_never_crashes(page):
    result = extract_isbns(page)
    assert isinstance(result, set)


@pytest.mark.parametrize("page", ADVERSARIAL_PAGES, ids=range(len(ADVERSARIAL_PAGES)))
def test_homepage_extractor_never_crashes(page):
    result = extract_homepages(page)
    assert isinstance(result, set)


@pytest.mark.parametrize("page", ADVERSARIAL_PAGES, ids=range(len(ADVERSARIAL_PAGES)))
def test_wrapper_inducer_never_crashes(page):
    wrapper = WrapperInducer().induce(page)
    assert wrapper is None or wrapper.record_count >= 2


def test_unicode_page_still_finds_real_phone():
    page = "日本語のテキスト 电话 ☎️ +1 (415) 555-0123 📞"
    assert extract_phones(page) == {"4155550123"}


def test_huge_digit_run_matches_nothing():
    assert extract_phones("9" * 10_000) == set()
    assert extract_isbns("ISBN " + "9" * 10_000) == set()


def test_strip_tags_on_broken_markup():
    assert "text" in strip_tags("<div <span>text</span >")


def test_tokenizer_on_unicode():
    tokens = tokenize("Crème brûlée was great! 完璧")
    assert "was" in tokens and "great" in tokens


def test_classifier_on_empty_and_unicode():
    clf = NaiveBayesClassifier().fit(
        ["good great", "bad awful"], [True, False]
    )
    assert clf.predict("") in (True, False)
    assert clf.predict("日本語だけ") in (True, False)


def test_name_similarity_on_degenerate_strings():
    assert name_similarity("", "") == 0.0
    assert 0.0 <= name_similarity("a" * 500, "a" * 499) <= 1.0
    assert name_similarity("!!!", "???") == 0.0


def test_isbn_near_miss_patterns():
    """Sequences that look ISBN-ish but must not validate."""
    near_misses = [
        "ISBN 978-0-306-40615-8",   # wrong check digit
        "ISBN 0306406152X",         # 11 chars
        "ISBN 97803064061",         # 11 digits
        "ISBN: 1234567890123456",   # too long
    ]
    for text in near_misses:
        assert extract_isbns(text) == set(), text


def test_phone_near_miss_patterns():
    near_misses = [
        "415-555-012",        # 9 digits
        "415-555-01234",      # 11 digits, no leading 1
        "045-555-0123",       # area code starts with 0
        "415-155-0123",       # exchange starts with 1
        "911-555-0123",       # N11 area code
    ]
    for text in near_misses:
        assert extract_phones(text) == set(), text
