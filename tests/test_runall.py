"""Tests for the run-everything orchestrator."""

from __future__ import annotations

import pytest

from repro.pipeline.config import ExperimentConfig
from repro.pipeline.runall import run_everything


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    config = ExperimentConfig(
        scale="tiny",
        seed=1,
        traffic_entities=2000,
        traffic_events=20000,
        traffic_cookies=4000,
    )
    directory = tmp_path_factory.mktemp("artifacts")
    written = run_everything(directory, config, verbose=False)
    return directory, written


def test_all_paper_artifacts_written(artifacts):
    directory, written = artifacts
    expected = {
        "table1",
        "table2",
        "figure3",
        "figure4",
        "figure5",
        "figure6_search",
        "figure6_browse",
        "figure9_phone",
        "figure9_homepage",
        "figure9_isbn",
    }
    assert expected <= set(written)
    # figures 1 & 2: one panel per local-business domain
    assert sum(1 for name in written if name.startswith("figure1_")) == 8
    assert sum(1 for name in written if name.startswith("figure2_")) == 8
    # figures 7 & 8: one panel per traffic site
    assert sum(1 for name in written if name.startswith("figure7_")) == 3
    assert sum(1 for name in written if name.startswith("figure8_")) == 3


def test_files_exist_and_nonempty(artifacts):
    directory, written = artifacts
    for name in written:
        text = directory / f"{name}.txt"
        assert text.exists(), name
        assert text.stat().st_size > 0, name


def test_csvs_written_for_figures(artifacts):
    directory, written = artifacts
    assert (directory / "figure3.csv").exists()
    assert (directory / "figure8_yelp.csv").exists()
    assert (directory / "figure9_phone.csv").exists()


def test_cli_all_command(tmp_path, capsys):
    from repro.cli import main

    code = main(
        [
            "all",
            str(tmp_path / "out"),
            "--scale",
            "tiny",
            "--traffic-entities",
            "1500",
            "--traffic-events",
            "15000",
            "--traffic-cookies",
            "3000",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "artifacts in" in out
    assert (tmp_path / "out" / "table2.txt").exists()
