"""Tests for the run-everything orchestrator."""

from __future__ import annotations

import pytest

from repro.pipeline.config import ExperimentConfig
from repro.pipeline.runall import run_everything


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    config = ExperimentConfig(
        scale="tiny",
        seed=1,
        traffic_entities=2000,
        traffic_events=20000,
        traffic_cookies=4000,
    )
    directory = tmp_path_factory.mktemp("artifacts")
    written = run_everything(directory, config, verbose=False)
    return directory, written


def test_all_paper_artifacts_written(artifacts):
    directory, written = artifacts
    expected = {
        "table1",
        "table2",
        "figure3",
        "figure4",
        "figure5",
        "figure6_search",
        "figure6_browse",
        "figure9_phone",
        "figure9_homepage",
        "figure9_isbn",
    }
    assert expected <= set(written)
    # figures 1 & 2: one panel per local-business domain
    assert sum(1 for name in written if name.startswith("figure1_")) == 8
    assert sum(1 for name in written if name.startswith("figure2_")) == 8
    # figures 7 & 8: one panel per traffic site
    assert sum(1 for name in written if name.startswith("figure7_")) == 3
    assert sum(1 for name in written if name.startswith("figure8_")) == 3


def test_files_exist_and_nonempty(artifacts):
    directory, written = artifacts
    for name in written:
        text = directory / f"{name}.txt"
        assert text.exists(), name
        assert text.stat().st_size > 0, name


def test_csvs_written_for_figures(artifacts):
    directory, written = artifacts
    assert (directory / "figure3.csv").exists()
    assert (directory / "figure8_yelp.csv").exists()
    assert (directory / "figure9_phone.csv").exists()


def test_cli_all_command(tmp_path, capsys):
    from repro.cli import main

    code = main(
        [
            "all",
            str(tmp_path / "out"),
            "--scale",
            "tiny",
            "--traffic-entities",
            "1500",
            "--traffic-events",
            "15000",
            "--traffic-cookies",
            "3000",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "artifacts in" in out
    assert (tmp_path / "out" / "table2.txt").exists()


# ------------------------------------------------------ exit-code contract
#
# 0 = complete, 2 = usage (bad fault plan, unresumable journal),
# 3 = partial failure (some tasks failed/skipped; resumable).

CLI_TINY = [
    "--scale", "tiny", "--no-cache",
    "--traffic-entities", "300",
    "--traffic-events", "1500",
    "--traffic-cookies", "300",
]


@pytest.fixture
def cli_env(tmp_path, monkeypatch):
    from repro.resilience import ENV_FAULTS, ENV_JOURNAL_DIR, RetryPolicy
    from repro.resilience import clear_plan_cache

    # Register ENV_FAULTS with monkeypatch so whatever --inject-faults
    # exports is rolled back after the test.
    monkeypatch.setenv(ENV_FAULTS, "")
    monkeypatch.setenv(ENV_JOURNAL_DIR, str(tmp_path / "journals"))
    monkeypatch.setattr(RetryPolicy, "sleep", lambda self, seconds: None)
    clear_plan_cache()
    yield monkeypatch
    clear_plan_cache()


def test_cli_partial_failure_exits_3_and_resume_completes(
    tmp_path, capsys, cli_env
):
    from repro.cli import main
    from repro.resilience import ENV_FAULTS, clear_plan_cache

    out = tmp_path / "out"
    code = main(
        ["all", str(out), *CLI_TINY, "--retries", "0",
         "--inject-faults", "op=error,task=figure3,times=99"]
    )
    assert code == 3
    captured = capsys.readouterr()
    assert "1 task(s) failed" in captured.err
    assert "--resume" in captured.err  # tells the user how to recover
    assert not (out / "figure3.txt").exists()
    assert (out / "table1.txt").exists()  # independent branches completed

    cli_env.setenv(ENV_FAULTS, "")  # outage over
    clear_plan_cache()
    assert main(["all", str(out), *CLI_TINY, "--resume"]) == 0
    assert (out / "figure3.txt").exists()


def test_cli_rejects_malformed_fault_plan(tmp_path, capsys, cli_env):
    from repro.cli import main

    code = main(
        ["all", str(tmp_path / "out"), *CLI_TINY,
         "--inject-faults", "op=explode"]
    )
    assert code == 2
    assert "bad --inject-faults" in capsys.readouterr().err


def test_cli_rejects_unknown_resume_id(tmp_path, capsys, cli_env):
    from repro.cli import main

    code = main(
        ["all", str(tmp_path / "out"), *CLI_TINY, "--resume", "deadbeef"]
    )
    assert code == 2
    assert "cannot resume" in capsys.readouterr().err


def test_cli_fail_fast_raises(tmp_path, cli_env):
    from repro.cli import main
    from repro.perf import TaskExecutionError

    with pytest.raises(TaskExecutionError, match="figure3"):
        main(
            ["all", str(tmp_path / "out"), *CLI_TINY, "--fail-fast",
             "--retries", "0",
             "--inject-faults", "op=error,task=figure3,times=99"]
        )
