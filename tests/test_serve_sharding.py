"""repro.serve.sharding + fasthttp: byte identity, determinism, protocol."""

from __future__ import annotations

import http.client
import json
import socket
import threading

import pytest

from repro.pipeline.config import ExperimentConfig
from repro.serve import ServeApp, ServeSettings, WORKER_HEADER
from repro.serve.fasthttp import FastHTTPServer
from repro.serve.indices import Manifest, build_index
from repro.serve.loadgen import (
    OpenLoadPlan,
    build_open_schedule,
    build_streams,
    run_open_load,
)
from repro.serve.sharding import (
    ShardPlan,
    ShardedServer,
    resolve_strategy,
    reuseport_available,
)

CONFIG = ExperimentConfig(scale="tiny", seed=0).scaled_down(400)

MANIFEST = Manifest(
    config=CONFIG,
    spread_pairs=(("restaurants", "phone"),),
    traffic_sites=("imdb",),
    artifacts=(),
)

PROBE_PATHS = (
    "/healthz",
    "/v1/entity/restaurants/5/sites",
    "/v1/site/site-000000.restaurants-phone.example.com/entities",
    "/v1/coverage/restaurants?k=1&t=10",
    "/v1/demand/imdb?n_reviews=4&source=search",
    "/v1/setcover/restaurants?budget=5",
)


@pytest.fixture(scope="module")
def index():
    return build_index(MANIFEST)


@pytest.fixture(scope="module")
def expected_bodies(index):
    """Golden bytes straight from an in-process app (no HTTP shell)."""
    app = ServeApp(index, ServeSettings(response_cache_entries=0))
    bodies = {}
    for path in PROBE_PATHS:
        status, body = app.handle(path)
        assert status == 200
        bodies[path] = body
    app.close()
    return bodies


def _get_bodies(host, port, paths, keep_alive=True):
    """Fetch paths over HTTP; returns (bodies, worker_ids)."""
    bodies, workers = [], []
    headers = {} if keep_alive else {"Connection": "close"}
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        for path in paths:
            connection.request("GET", path, headers=headers)
            response = connection.getresponse()
            bodies.append(response.read())
            workers.append(response.getheader(WORKER_HEADER))
            assert response.status == 200, path
            if not keep_alive:
                connection.close()
                connection = http.client.HTTPConnection(host, port, timeout=30)
    finally:
        connection.close()
    return bodies, workers


# -- plan / strategy units ----------------------------------------------------


def test_shard_plan_validation():
    with pytest.raises(ValueError):
        ShardPlan(workers=0)
    with pytest.raises(ValueError):
        ShardPlan(strategy="carrier-pigeon")
    with pytest.raises(ValueError):
        ShardPlan(reload_poll_seconds=-1.0)
    with pytest.raises(ValueError):
        ShardPlan(backlog=0)


def test_resolve_strategy():
    with pytest.raises(ValueError):
        resolve_strategy("bogus")
    assert resolve_strategy("router") == "router"
    assert resolve_strategy("auto") in ("reuseport", "router")
    if reuseport_available():
        assert resolve_strategy("reuseport") == "reuseport"
        assert resolve_strategy("auto") == "reuseport"


def test_sharded_server_needs_index_or_manifest():
    with pytest.raises(ValueError, match="index or a manifest_path"):
        ShardedServer()


def test_hot_reload_needs_manifest(index):
    with pytest.raises(ValueError, match="manifest_path to watch"):
        ShardedServer(index=index, plan=ShardPlan(reload_poll_seconds=1.0))


# -- the fast HTTP shell (single process, no fork) ----------------------------


@pytest.fixture()
def fast_server(index):
    app = ServeApp(
        index, ServeSettings(host="127.0.0.1", port=0), worker_id=3
    )
    server = FastHTTPServer(app)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, app
    server.shutdown()
    thread.join(timeout=5)
    app.close()


def test_fasthttp_pipelined_requests_one_write(fast_server, expected_bodies):
    server, __ = fast_server
    host, port = server.server_address[:2]
    paths = ["/healthz", "/v1/coverage/restaurants?k=1&t=10", "/healthz"]
    batch = b"".join(
        f"GET {p} HTTP/1.1\r\nHost: t\r\n\r\n".encode() for p in paths
    )
    with socket.create_connection((host, port), timeout=10) as conn:
        conn.sendall(batch)
        received = bytearray()
        while received.count(b"HTTP/1.1 200") < 3:
            chunk = conn.recv(65536)
            assert chunk, "server closed mid-pipeline"
            received += chunk
    text = bytes(received)
    assert text.count(f"{WORKER_HEADER}: 3".encode()) == 3
    for path in set(paths):
        assert expected_bodies[path] in text


def test_fasthttp_responses_match_app_bytes(fast_server, expected_bodies):
    server, __ = fast_server
    host, port = server.server_address[:2]
    bodies, workers = _get_bodies(host, port, PROBE_PATHS)
    assert bodies == [expected_bodies[p] for p in PROBE_PATHS]
    assert set(workers) == {"3"}


def test_fasthttp_http10_closes_by_default(fast_server):
    server, __ = fast_server
    host, port = server.server_address[:2]
    with socket.create_connection((host, port), timeout=10) as conn:
        conn.sendall(b"GET /healthz HTTP/1.0\r\n\r\n")
        received = bytearray()
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break  # closed after the response, as HTTP/1.0 demands
            received += chunk
    assert received.startswith(b"HTTP/1.1 200")


def test_fasthttp_rejects_non_get_and_closes(fast_server):
    server, __ = fast_server
    host, port = server.server_address[:2]
    with socket.create_connection((host, port), timeout=10) as conn:
        conn.sendall(b"POST /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        received = bytearray()
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            received += chunk
    assert received.startswith(b"HTTP/1.1 501")


def test_fasthttp_rejects_malformed_request_line(fast_server):
    server, __ = fast_server
    host, port = server.server_address[:2]
    with socket.create_connection((host, port), timeout=10) as conn:
        conn.sendall(b"NONSENSE\r\n\r\n")
        received = bytearray()
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            received += chunk
    assert received.startswith(b"HTTP/1.1 400")


def test_fasthttp_socketless_refuses_serve_forever(index):
    app = ServeApp(index, ServeSettings())
    server = FastHTTPServer(app, bind=False)
    with pytest.raises(RuntimeError, match="process_connection"):
        server.serve_forever()
    server.shutdown()
    app.close()


# -- sharded deployments (forked workers) -------------------------------------


def _start(index, workers, strategy):
    server = ShardedServer(
        index=index,
        settings=ServeSettings(host="127.0.0.1", port=0),
        plan=ShardPlan(workers=workers, strategy=strategy),
    )
    host, port = server.start()
    return server, host, port


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_responses_byte_identical_across_worker_counts(
    index, expected_bodies, workers
):
    server, host, port = _start(index, workers, "auto")
    try:
        bodies, __ = _get_bodies(host, port, PROBE_PATHS)
    finally:
        server.stop()
    assert bodies == [expected_bodies[p] for p in PROBE_PATHS]


def test_responses_byte_identical_with_and_without_keep_alive(
    index, expected_bodies
):
    server, host, port = _start(index, 2, "auto")
    try:
        pooled, __ = _get_bodies(host, port, PROBE_PATHS, keep_alive=True)
        fresh, __ = _get_bodies(host, port, PROBE_PATHS, keep_alive=False)
    finally:
        server.stop()
    expected = [expected_bodies[p] for p in PROBE_PATHS]
    assert pooled == expected
    assert fresh == expected


def test_router_round_robin_attribution_is_deterministic(index):
    server, host, port = _start(index, 3, "router")
    try:
        seen = []
        for __ in range(7):
            connection = http.client.HTTPConnection(host, port, timeout=30)
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            response.read()
            seen.append(response.getheader(WORKER_HEADER))
            connection.close()
    finally:
        server.stop()
    # Sequential connections land on workers strictly round-robin.
    assert seen == ["0", "1", "2", "0", "1", "2", "0"]


def test_open_loop_attribution_reproducible_across_runs(index):
    """Same seed, same worker count -> identical per-worker counts."""
    app = ServeApp(index, ServeSettings(response_cache_entries=0))
    summary = json.loads(app.handle("/healthz")[1])
    app.close()
    plan = OpenLoadPlan(seed=7, rate=400.0, duration_seconds=0.5, connections=2)
    streams = build_streams(summary, plan.closed_plan())
    schedules = build_open_schedule(plan)

    server, host, port = _start(index, 2, "router")
    try:
        first = run_open_load(host, port, streams, schedules, plan.rate)
        second = run_open_load(host, port, streams, schedules, plan.rate)
    finally:
        server.stop()
    assert first.transport_errors == 0 and second.transport_errors == 0
    assert first.stream_sha256 == second.stream_sha256
    assert first.worker_requests == second.worker_requests
    # Round-robin over two connections splits the stream exactly.
    assert sorted(first.worker_requests) == ["0", "1"]
    assert sum(first.worker_requests.values()) == plan.requests


def test_worker_metrics_report_worker_id(index):
    server, host, port = _start(index, 2, "router")
    try:
        connection = http.client.HTTPConnection(host, port, timeout=30)
        connection.request("GET", "/metrics")
        response = connection.getresponse()
        payload = json.loads(response.read())
        header = response.getheader(WORKER_HEADER)
        connection.close()
    finally:
        server.stop()
    assert str(payload["worker"]) == header
    assert payload["index_fingerprint"] == index.identity
