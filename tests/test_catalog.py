"""Tests for the EntityDatabase container."""

from __future__ import annotations

import pytest

from repro.entities.books import generate_books
from repro.entities.business import generate_listings
from repro.entities.catalog import Entity, EntityDatabase
from repro.entities.domains import ATTRIBUTE_HOMEPAGE, ATTRIBUTE_ISBN, ATTRIBUTE_PHONE


def test_from_listings_lookup_by_phone(restaurant_db):
    listing = restaurant_db.get(restaurant_db.entity_ids[0]).payload
    assert restaurant_db.lookup(ATTRIBUTE_PHONE, listing.phone) == listing.entity_id


def test_from_listings_lookup_by_homepage(restaurant_db):
    for entity in restaurant_db:
        if ATTRIBUTE_HOMEPAGE in entity.keys:
            key = entity.keys[ATTRIBUTE_HOMEPAGE]
            assert restaurant_db.lookup(ATTRIBUTE_HOMEPAGE, key) == entity.entity_id
            break
    else:
        pytest.fail("no entity with a homepage in the fixture")


def test_from_books_lookup(book_db):
    book = book_db.get(book_db.entity_ids[0]).payload
    assert book_db.lookup(ATTRIBUTE_ISBN, book.isbn13) == book.entity_id


def test_lookup_miss_returns_none(restaurant_db):
    assert restaurant_db.lookup(ATTRIBUTE_PHONE, "9995550000") is None
    assert restaurant_db.lookup("nonexistent-attr", "x") is None


def test_index_of_is_dense_and_stable(restaurant_db):
    ids = restaurant_db.entity_ids
    for position, entity_id in enumerate(ids):
        assert restaurant_db.index_of(entity_id) == position


def test_len_iter_contains(restaurant_db):
    assert len(restaurant_db) == 300
    seen = list(restaurant_db)
    assert len(seen) == 300
    assert seen[0].entity_id in restaurant_db
    assert "restaurants:99999999" not in restaurant_db


def test_entities_with_attribute(restaurant_db):
    with_homepage = restaurant_db.entities_with(ATTRIBUTE_HOMEPAGE)
    assert 0 < len(with_homepage) <= 300
    assert all(ATTRIBUTE_HOMEPAGE in e.keys for e in with_homepage)


def test_key_table_sizes(restaurant_db):
    assert len(restaurant_db.key_table(ATTRIBUTE_PHONE)) == 300
    assert len(restaurant_db.key_table("missing")) == 0


def test_duplicate_entity_id_rejected():
    listings = generate_listings("banks", 2, seed=1)
    db = EntityDatabase.from_listings(listings)
    entity = db.get(listings[0].entity_id)
    with pytest.raises(ValueError, match="duplicate entity_id"):
        db.add(entity)


def test_duplicate_key_rejected():
    listings = generate_listings("banks", 2, seed=2)
    db = EntityDatabase.from_listings(listings)
    clone = Entity(
        entity_id="banks:99999999",
        domain_key="banks",
        keys={ATTRIBUTE_PHONE: listings[0].phone},
    )
    with pytest.raises(ValueError, match="duplicate phone key"):
        db.add(clone)


def test_wrong_domain_rejected():
    db = EntityDatabase.from_books(generate_books(3, seed=3))
    stray = Entity(
        entity_id="banks:00000001",
        domain_key="banks",
        keys={ATTRIBUTE_PHONE: "4155550123"},
    )
    with pytest.raises(ValueError, match="belongs to domain"):
        db.add(stray)


def test_empty_inputs_rejected():
    with pytest.raises(ValueError):
        EntityDatabase.from_listings([])
    with pytest.raises(ValueError):
        EntityDatabase.from_books([])
