"""repro.serve.reload: manifest watching, atomic epoch swaps, chaos."""

from __future__ import annotations

import http.client
import json
import os
import threading
import time

import pytest

from repro.perf import ArtifactCache, configure_cache
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.runall import write_manifest
from repro.resilience import ENV_FAULTS, clear_plan_cache
from repro.serve import (
    ManifestWatcher,
    ServeApp,
    ServeSettings,
    ShardPlan,
    ShardedServer,
    build_index,
    load_manifest,
    manifest_identity,
)


@pytest.fixture(autouse=True)
def no_faults(monkeypatch):
    monkeypatch.delenv(ENV_FAULTS, raising=False)
    clear_plan_cache()
    yield
    clear_plan_cache()


def write_run(root, seed: int):
    """A run directory whose manifest is trimmed to one pair, one site."""
    config = ExperimentConfig(scale="tiny", seed=seed).scaled_down(400)
    path = write_manifest(root, config, ["table1.txt"])
    payload = json.loads(path.read_text())
    payload["spread_pairs"] = [["restaurants", "phone"]]
    payload["traffic_sites"] = ["imdb"]
    path.write_text(json.dumps(payload))
    return path


def bump_mtime(path, seconds: float = 10.0) -> None:
    """Force a visible mtime change regardless of filesystem granularity."""
    stamp = os.stat(path).st_mtime + seconds
    os.utime(path, (stamp, stamp))


@pytest.fixture()
def run_dir(tmp_path):
    write_run(tmp_path, seed=0)
    return tmp_path


def make_app(run_dir) -> ServeApp:
    index = build_index(load_manifest(run_dir))
    return ServeApp(index, ServeSettings(response_cache_entries=8))


def test_manifest_identity_matches_built_index(run_dir):
    manifest = load_manifest(run_dir)
    assert manifest_identity(manifest) == build_index(manifest).identity


def test_watcher_swaps_on_real_manifest_change(run_dir):
    app = make_app(run_dir)
    try:
        watcher = ManifestWatcher(run_dir, app, poll_seconds=60.0)
        old_identity = app.index.identity
        assert app.handle("/healthz")[1]  # warm the response cache
        path = write_run(run_dir, seed=1)
        bump_mtime(path)
        assert watcher.check_once() is True
        assert watcher.reloads == 1
        assert watcher.last_error is None
        assert app.index.identity != old_identity
        payload = json.loads(app.handle("/healthz")[1])
        assert payload["seed"] == 1  # the epoch (and its caches) moved
        metrics = json.loads(app.handle("/metrics")[1])
        assert metrics["index_swaps"] == 1
        assert metrics["index_fingerprint"] == app.index.identity
    finally:
        app.close()


def test_equivalent_rewrite_is_recorded_not_swapped(run_dir):
    app = make_app(run_dir)
    try:
        watcher = ManifestWatcher(run_dir, app, poll_seconds=60.0)
        identity = app.index.identity
        path = write_run(run_dir, seed=0)  # same config, new bytes
        bump_mtime(path)
        assert watcher.check_once() is False
        assert watcher.reloads == 0
        assert app.index.identity == identity
        # The new mtime was memorized: the next poll is a cheap no-op.
        assert watcher.check_once() is False
        assert watcher.checks == 2
    finally:
        app.close()


def test_unchanged_mtime_short_circuits(run_dir):
    app = make_app(run_dir)
    try:
        watcher = ManifestWatcher(run_dir, app, poll_seconds=60.0)
        assert watcher.check_once() is False
        assert watcher.last_error is None
    finally:
        app.close()


def test_torn_manifest_keeps_old_epoch_then_recovers(run_dir):
    app = make_app(run_dir)
    try:
        watcher = ManifestWatcher(run_dir, app, poll_seconds=60.0)
        identity = app.index.identity
        manifest_file = watcher.path
        manifest_file.write_text('{"half": "written')  # mid-publish read
        bump_mtime(manifest_file)
        assert watcher.check_once() is False
        assert watcher.last_error is not None
        assert app.index.identity == identity  # stale beats dead
        path = write_run(run_dir, seed=2)
        bump_mtime(path, seconds=20.0)
        assert watcher.check_once() is True
        assert watcher.last_error is None
        assert json.loads(app.handle("/healthz")[1])["seed"] == 2
    finally:
        app.close()


def test_watcher_rejects_bad_poll(run_dir):
    app = make_app(run_dir)
    try:
        with pytest.raises(ValueError, match="poll_seconds"):
            ManifestWatcher(run_dir, app, poll_seconds=0.0)
    finally:
        app.close()


def test_watcher_thread_lifecycle(run_dir):
    app = make_app(run_dir)
    try:
        watcher = ManifestWatcher(run_dir, app, poll_seconds=0.05).start()
        assert watcher.start() is watcher  # idempotent
        deadline = time.monotonic() + 5.0  # reprolint: disable=RNG004
        while watcher.checks == 0 and time.monotonic() < deadline:  # reprolint: disable=RNG004
            time.sleep(0.01)
        watcher.stop()
        assert watcher.checks >= 1
    finally:
        app.close()


def test_stalled_rebuild_never_tears_responses(run_dir, tmp_path, monkeypatch):
    """Chaos: a slow (op=stall) rebuild must never produce mixed bytes.

    While the watcher rebuilds the new epoch through a wedged artifact
    cache, concurrent requests keep being answered — every response
    must be byte-identical to either the old epoch's answer or the new
    epoch's answer, never an interleaving of the two.  This is the
    epoch design's whole point: a request captures one epoch reference
    and computes entirely inside it.
    """
    previous = configure_cache(
        ArtifactCache(directory=tmp_path / "chaos-cache")
    )
    try:
        app = make_app(run_dir)
        watcher = ManifestWatcher(run_dir, app, poll_seconds=60.0)
        status_a, body_a = app.handle("/healthz")
        assert status_a == 200

        path = write_run(run_dir, seed=3)
        bump_mtime(path)
        # Wedge every cache read/publish the rebuild performs.
        monkeypatch.setenv(ENV_FAULTS, "op=stall,key=*,seconds=0.2")
        clear_plan_cache()

        stop = threading.Event()
        observed: list[tuple[int, bytes]] = []
        lock = threading.Lock()

        def hammer() -> None:
            while not stop.is_set():
                result = app.handle("/healthz")
                with lock:
                    observed.append(result)

        threads = [threading.Thread(target=hammer) for __ in range(3)]
        for thread in threads:
            thread.start()
        swapped = watcher.check_once()  # blocks on the stalled rebuild
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)

        assert swapped is True
        status_b, body_b = app.handle("/healthz")
        assert status_b == 200
        assert body_b != body_a  # genuinely a different epoch
        assert json.loads(body_b)["seed"] == 3
        assert observed, "the hammer threads never got a request through"
        assert all(status == 200 for status, __ in observed)
        torn = [body for __, body in observed if body not in (body_a, body_b)]
        assert torn == []
        app.close()
    finally:
        configure_cache(previous)


def test_sharded_workers_hot_reload_from_manifest(run_dir):
    """End to end: forked workers notice the rewrite and swap epochs."""
    server = ShardedServer(
        index=build_index(load_manifest(run_dir)),
        manifest_path=run_dir,
        settings=ServeSettings(host="127.0.0.1", port=0),
        plan=ShardPlan(
            workers=2, strategy="router", reload_poll_seconds=0.1
        ),
    )
    host, port = server.start()

    def healthz_seed() -> int:
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.request("GET", "/healthz")
            return json.loads(connection.getresponse().read())["seed"]
        finally:
            connection.close()

    try:
        assert healthz_seed() == 0
        path = write_run(run_dir, seed=4)
        bump_mtime(path)
        deadline = time.monotonic() + 20.0  # reprolint: disable=RNG004
        # Round-robin dispatch: two consecutive fresh connections land
        # on the two workers, so both must have swapped to pass.
        while time.monotonic() < deadline:  # reprolint: disable=RNG004
            if healthz_seed() == 4 and healthz_seed() == 4:
                break
            time.sleep(0.1)
        else:
            pytest.fail("workers never swapped to the rewritten manifest")
    finally:
        server.stop()
