"""Tests for the content-redundancy metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.incidence import BipartiteIncidence
from repro.core.redundancy import (
    head_site_overlap_matrix,
    marginal_novelty_profile,
    redundancy_report,
    replication_histogram,
)


def test_replication_histogram(tiny_incidence):
    counts, frequency = replication_histogram(tiny_incidence, max_count=3)
    # mentions: [1,1,2,2,2,1] -> 3 singletons, 3 doubles of 6 mentioned
    assert counts.tolist() == [1, 2, 3]
    assert frequency.tolist() == pytest.approx([0.5, 0.5, 0.0])
    assert frequency.sum() == pytest.approx(1.0)


def test_replication_histogram_clips_tail():
    inc = BipartiteIncidence.from_site_lists(
        n_entities=1, sites=[(f"s{i}", [0]) for i in range(30)]
    )
    counts, frequency = replication_histogram(inc, max_count=5)
    assert frequency[-1] == pytest.approx(1.0)  # 30 mentions -> >= 5 bucket


def test_replication_histogram_empty():
    inc = BipartiteIncidence.from_site_lists(n_entities=3, sites=[])
    __, frequency = replication_histogram(inc)
    assert frequency.sum() == 0.0


def test_replication_rejects_bad_max():
    inc = BipartiteIncidence.from_site_lists(n_entities=1, sites=[])
    with pytest.raises(ValueError):
        replication_histogram(inc, max_count=0)


def test_head_overlap_matrix(tiny_incidence):
    hosts, matrix = head_site_overlap_matrix(tiny_incidence, top=2)
    assert hosts == ["big.example", "mid.example"]
    assert matrix[0, 0] == pytest.approx(1.0)
    # overlap {2,3} over union {0,1,2,3,4} = 2/5
    assert matrix[0, 1] == pytest.approx(2 / 5)
    assert matrix[1, 0] == matrix[0, 1]


def test_head_overlap_rejects_bad_top(tiny_incidence):
    with pytest.raises(ValueError):
        head_site_overlap_matrix(tiny_incidence, top=0)


def test_marginal_novelty_profile(tiny_incidence):
    profile = marginal_novelty_profile(tiny_incidence)
    # big.example: all 4 new; mid: 1 of 3 new; small: 0 of 1; island: new
    assert profile.tolist() == pytest.approx([1.0, 1 / 3, 0.0, 1.0])


def test_marginal_novelty_custom_order(tiny_incidence):
    profile = marginal_novelty_profile(tiny_incidence, order=np.array([1, 0]))
    assert profile[0] == pytest.approx(1.0)
    assert profile[1] == pytest.approx(0.5)  # big adds 0,1 of 4


def test_redundancy_report(tiny_incidence):
    report = redundancy_report(tiny_incidence)
    assert report.redundancy_coefficient == pytest.approx(9 / 6)
    assert report.singleton_fraction == pytest.approx(0.5)
    assert report.median_replication == pytest.approx(1.5)
    assert 0.0 <= report.head_overlap_mean <= 1.0
    assert report.novelty_decay_rank == 3  # small.example adds nothing


def test_redundancy_report_empty():
    inc = BipartiteIncidence.from_site_lists(n_entities=5, sites=[])
    report = redundancy_report(inc)
    assert report.redundancy_coefficient == 0.0


def test_redundancy_tracks_generated_profile():
    """Generated corpora should show paper-scale redundancy."""
    from repro.webgen.profiles import get_profile

    inc = get_profile("restaurants", "phone").generate("tiny", seed=1)
    report = redundancy_report(inc)
    assert report.redundancy_coefficient > 5  # avg mentions target ~9.6 at tiny
    assert report.singleton_fraction < 0.2
