"""repro.serve.loadgen: stream determinism, percentiles, report shape."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serve.loadgen import (
    CLIENT_ERROR_STATUS,
    LoadPlan,
    LoadResult,
    OpenLoadPlan,
    OpenLoadResult,
    _endpoint_of,
    _percentile,
    build_open_schedule,
    build_streams,
    find_knee,
    open_rate_summary,
    run_open_load,
    stream_digest,
    write_bench_report,
    write_open_bench_report,
)

SUMMARY = {
    "status": "ok",
    "pairs": [
        {
            "domain": "restaurants",
            "attribute": "phone",
            "n_entities": 120,
            "n_sites": 60,
            "ks": [1, 2, 3],
            "top_hosts": ["a.example", "b.example", "c.example"],
        },
        {
            "domain": "books",
            "attribute": "isbn",
            "n_entities": 80,
            "n_sites": 40,
            "ks": [1, 2],
            "top_hosts": ["d.example", "e.example"],
        },
    ],
    "traffic_sites": ["imdb", "yelp"],
}


def test_plan_validation():
    with pytest.raises(ValueError):
        LoadPlan(clients=0)
    with pytest.raises(ValueError):
        LoadPlan(requests=0)
    with pytest.raises(ValueError):
        LoadPlan(zipf_exponent=0.0)


def test_same_seed_same_stream():
    plan = LoadPlan(seed=7, clients=3, requests=50)
    first = build_streams(SUMMARY, plan)
    second = build_streams(SUMMARY, plan)
    assert first == second
    assert stream_digest(first) == stream_digest(second)


def test_different_seed_different_stream():
    base = build_streams(SUMMARY, LoadPlan(seed=7, clients=2, requests=40))
    other = build_streams(SUMMARY, LoadPlan(seed=8, clients=2, requests=40))
    assert stream_digest(base) != stream_digest(other)


def test_stream_sizes_sum_to_requests():
    plan = LoadPlan(seed=1, clients=4, requests=23)
    streams = build_streams(SUMMARY, plan)
    assert len(streams) == 4
    assert sum(len(s) for s in streams) == 23
    # Earlier clients absorb the remainder.
    assert [len(s) for s in streams] == [6, 6, 6, 5]


def test_client_streams_independent_of_client_count():
    """Client 0's stream depends only on its own seed, not on siblings."""
    solo = build_streams(SUMMARY, LoadPlan(seed=7, clients=1, requests=10))
    many = build_streams(SUMMARY, LoadPlan(seed=7, clients=5, requests=50))
    assert many[0][: len(solo[0])] == solo[0]


def test_streams_hit_every_endpoint():
    streams = build_streams(SUMMARY, LoadPlan(seed=7, clients=2, requests=300))
    seen = {_endpoint_of(path) for stream in streams for path in stream}
    assert seen == {"entity", "site", "coverage", "demand", "setcover"}


def test_stream_paths_stay_in_summary_vocabulary():
    streams = build_streams(SUMMARY, LoadPlan(seed=3, clients=2, requests=200))
    hosts = {h for pair in SUMMARY["pairs"] for h in pair["top_hosts"]}
    for path in (p for stream in streams for p in stream):
        if path.startswith("/v1/site/"):
            assert path.split("/")[3] in hosts
        elif path.startswith("/v1/demand/"):
            assert path.split("/")[3].split("?")[0] in SUMMARY["traffic_sites"]


def test_zipf_skews_toward_head_entities():
    streams = build_streams(
        SUMMARY, LoadPlan(seed=7, clients=1, requests=2000, zipf_exponent=1.3)
    )
    entity_ranks = [
        int(path.split("/")[4])
        for path in streams[0]
        if path.startswith("/v1/entity/")
    ]
    head = sum(1 for rank in entity_ranks if rank < 10)
    assert head > len(entity_ranks) * 0.4  # top ~8% of ranks dominate


def test_percentile_nearest_rank():
    samples = [float(i) for i in range(1, 101)]
    assert _percentile(samples, 0.50) == 50.0
    assert _percentile(samples, 0.95) == 95.0
    assert _percentile(samples, 0.99) == 99.0
    assert _percentile([], 0.5) == 0.0


def test_write_bench_report_shape(tmp_path):
    plan = LoadPlan(seed=7, clients=2, requests=4)
    result = LoadResult(
        wall_seconds=2.0,
        stream_sha256="abc123",
        latencies={"entity": [0.001, 0.002], "setcover": [0.1, 0.2]},
        statuses={"200": 3, str(CLIENT_ERROR_STATUS): 1},
        transport_errors=1,
    )
    path = tmp_path / "BENCH_PR4.json"
    payload = write_bench_report(path, plan, result, target="unit-test")
    on_disk = json.loads(path.read_text())
    assert on_disk == payload
    assert payload["request_stream_sha256"] == "abc123"
    assert payload["throughput_rps"] == 2.0
    assert set(payload["latency_ms"]) == {
        "p50_ms", "p95_ms", "p99_ms", "mean_ms", "max_ms"
    }
    assert payload["per_endpoint"]["setcover"]["count"] == 2
    assert payload["statuses"]["200"] == 3
    assert payload["transport_errors"] == 1
    assert "server_metrics" not in payload
    with_metrics = write_bench_report(
        path, plan, result, server_metrics={"requests_total": 4}
    )
    assert with_metrics["server_metrics"] == {"requests_total": 4}


def test_empty_pairs_rejected():
    with pytest.raises(ValueError, match="no .domain, attribute. pairs"):
        build_streams({"pairs": [], "traffic_sites": []}, LoadPlan())


# -- open-loop generation -----------------------------------------------------


def test_open_plan_validation():
    with pytest.raises(ValueError):
        OpenLoadPlan(rate=0.0)
    with pytest.raises(ValueError):
        OpenLoadPlan(duration_seconds=0.0)
    with pytest.raises(ValueError):
        OpenLoadPlan(connections=0)
    with pytest.raises(ValueError):
        OpenLoadPlan(zipf_exponent=0.0)


def test_open_plan_derives_requests_and_closed_twin():
    plan = OpenLoadPlan(seed=3, rate=500.0, duration_seconds=2.0, connections=3)
    assert plan.requests == 1000
    closed = plan.closed_plan()
    assert closed == LoadPlan(seed=3, clients=3, requests=1000)
    faster = plan.at_rate(1000.0)
    assert faster.requests == 2000
    assert faster.seed == plan.seed


def test_open_schedule_is_deterministic_and_aligned():
    plan = OpenLoadPlan(seed=7, rate=300.0, duration_seconds=1.0, connections=3)
    first = build_open_schedule(plan)
    second = build_open_schedule(plan)
    assert len(first) == 3
    streams = build_streams(SUMMARY, plan.closed_plan())
    for times, again, paths in zip(first, second, streams):
        assert list(times) == list(again)
        assert len(times) == len(paths)
        # Arrival times are strictly increasing from a Poisson process.
        assert all(b > a for a, b in zip(times, times[1:]))
    # A different seed moves every arrival.
    other = build_open_schedule(
        OpenLoadPlan(seed=8, rate=300.0, duration_seconds=1.0, connections=3)
    )
    assert list(other[0]) != list(first[0])


def test_open_schedule_mean_rate_matches_offer():
    plan = OpenLoadPlan(seed=7, rate=2000.0, duration_seconds=4.0, connections=2)
    schedules = build_open_schedule(plan)
    total = sum(len(times) for times in schedules)
    horizon = max(times[-1] for times in schedules)
    assert total == plan.requests
    # Poisson superposition: the realized span is close to the plan.
    assert horizon == pytest.approx(plan.duration_seconds, rel=0.2)


def test_write_open_bench_report_shape(tmp_path):
    plan = OpenLoadPlan(seed=7, rate=100.0, duration_seconds=1.0, connections=2)
    result = OpenLoadResult(
        offered_rate=100.0,
        wall_seconds=1.0,
        stream_sha256="deadbeef",
        latencies={"entity": [0.001, 0.002]},
        statuses={"200": 2},
        worker_requests={"0": 1, "1": 1},
        transport_errors=0,
    )
    sweep = {
        "p99_budget_ms": 50.0,
        "rates": [{"offered_rate_rps": 100.0, "p99_ms": 2.0, "ok": True}],
        "knee_rate_rps": 100.0,
        "knee": {"offered_rate_rps": 100.0, "p99_ms": 2.0, "ok": True},
    }
    path = tmp_path / "BENCH_PR7.json"
    payload = write_open_bench_report(path, plan, result, sweep=sweep)
    on_disk = json.loads(path.read_text())
    assert on_disk == payload
    assert payload["mode"] == "open"
    assert payload["offered_rate_rps"] == 100.0
    assert payload["throughput_rps"] == 2.0
    assert payload["per_worker"] == {"0": 1, "1": 1}
    assert payload["sweep"]["knee_rate_rps"] == 100.0
    assert payload["request_stream_sha256"] == "deadbeef"


def test_open_rate_summary_counts_errors():
    result = OpenLoadResult(
        offered_rate=10.0,
        wall_seconds=2.0,
        stream_sha256="x",
        latencies={"entity": [0.004, 0.002]},
        statuses={"200": 2, str(CLIENT_ERROR_STATUS): 3},
        transport_errors=3,
    )
    row = open_rate_summary(result)
    assert row["offered_rate_rps"] == 10.0
    assert row["completed"] == 2
    assert row["transport_errors"] == 3
    assert row["p99_ms"] == 4.0


def test_run_open_load_rejects_misaligned_schedules():
    with pytest.raises(ValueError, match="align"):
        run_open_load("127.0.0.1", 1, [["/healthz"]], [], offered_rate=1.0)
    with pytest.raises(ValueError, match="length mismatch"):
        run_open_load(
            "127.0.0.1",
            1,
            [["/healthz"]],
            [np.asarray([0.1, 0.2])],
            offered_rate=1.0,
        )


def test_find_knee_requires_rates():
    plan = OpenLoadPlan()
    with pytest.raises(ValueError, match="at least one rate"):
        find_knee("127.0.0.1", 1, SUMMARY, plan, [], p99_budget_ms=1.0)
