"""Tests for the bootstrapping set-expansion simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.graph import EntitySiteGraph
from repro.discovery.bootstrap import BootstrapExpansion


def test_expansion_reaches_component(tiny_incidence):
    expansion = BootstrapExpansion(tiny_incidence)
    trace = expansion.run([0])
    # entity 0's component holds entities 0-4 and 3 sites
    assert trace.entities.tolist() == [0, 1, 2, 3, 4]
    assert len(trace.sites) == 3
    assert trace.entity_fraction(6) == pytest.approx(5 / 6)


def test_expansion_stays_in_island(tiny_incidence):
    trace = BootstrapExpansion(tiny_incidence).run([5])
    assert trace.entities.tolist() == [5]
    assert len(trace.sites) == 1


def test_iterations_bounded_by_half_diameter(tiny_incidence):
    graph = EntitySiteGraph(tiny_incidence)
    diameter = graph.diameter()
    for seed in range(5):
        trace = BootstrapExpansion(tiny_incidence).run([seed])
        assert trace.iterations <= diameter / 2 + 1


def test_counts_monotone(tiny_incidence):
    trace = BootstrapExpansion(tiny_incidence).run([0])
    assert all(
        a <= b for a, b in zip(trace.entity_counts, trace.entity_counts[1:])
    )
    assert all(a <= b for a, b in zip(trace.site_counts, trace.site_counts[1:]))


def test_seed_union(tiny_incidence):
    """Multiple seeds reach the union of their components."""
    trace = BootstrapExpansion(tiny_incidence).run([0, 5])
    assert trace.entities.tolist() == [0, 1, 2, 3, 4, 5]


def test_max_iterations_cap(tiny_incidence):
    trace = BootstrapExpansion(tiny_incidence).run([0], max_iterations=1)
    assert trace.iterations == 1
    # one hop: big.example -> entities 0..3 (not yet 4)
    assert 4 not in trace.entities.tolist() or len(trace.entity_counts) == 2


def test_validation(tiny_incidence):
    expansion = BootstrapExpansion(tiny_incidence)
    with pytest.raises(ValueError):
        expansion.run([])
    with pytest.raises(ValueError):
        expansion.run([99])
    with pytest.raises(ValueError):
        expansion.run([-1])


def test_sites_of_entities_transpose(tiny_incidence):
    expansion = BootstrapExpansion(tiny_incidence)
    assert expansion.sites_of_entities(np.array([4])).tolist() == [1, 2]
    assert expansion.entities_of_sites(np.array([0])).tolist() == [0, 1, 2, 3]


def test_random_seed_trial(random_incidence):
    expansion = BootstrapExpansion(random_incidence)
    trace = expansion.random_seed_trial(seed_size=3, rng=5)
    assert len(trace.entities) >= 3


def test_random_seed_reaches_largest_component(random_incidence):
    """With a few seeds, expansion should find the dominant component."""
    summary = EntitySiteGraph(random_incidence).components()
    trace = BootstrapExpansion(random_incidence).random_seed_trial(
        seed_size=5, rng=6
    )
    assert len(trace.entities) >= summary.largest_component_entities * 0.9


def test_property_expansion_equals_component(random_incidence):
    """Expansion from any single seed discovers exactly the entities of
    that seed's connected component (the Section 5 equivalence)."""
    import networkx as nx

    graph = nx.Graph()
    for s in range(random_incidence.n_sites):
        for e in random_incidence.site_entities(s).tolist():
            graph.add_edge(e, random_incidence.n_entities + s)
    expansion = BootstrapExpansion(random_incidence)
    for seed in random_incidence.mentioned_entities()[:10].tolist():
        component = nx.node_connected_component(graph, seed)
        expected_entities = sorted(
            node for node in component if node < random_incidence.n_entities
        )
        trace = expansion.run([seed])
        assert trace.entities.tolist() == expected_entities
