"""Tests for deep-web sites and query probing."""

from __future__ import annotations

import pytest

from repro.crawl.deepweb import DeepWebProber, DeepWebSite
from repro.entities.business import generate_listings


@pytest.fixture(scope="module")
def hidden_listings():
    return generate_listings("restaurants", 120, seed=61)


@pytest.fixture()
def site(hidden_listings):
    return DeepWebSite("forms.example.com", hidden_listings, page_size=10)


class TestDeepWebSite:
    def test_phone_lookup(self, site, hidden_listings):
        hit = site.query_phone(hidden_listings[0].phone)
        assert hit == [hidden_listings[0]]
        assert site.query_phone("0000000000") == []
        assert site.queries_served == 2

    def test_prefix_search(self, site, hidden_listings):
        target = hidden_listings[5]
        prefix = target.name[:4]
        results = site.query_name_prefix(prefix)
        assert target in results
        assert len(results) <= site.page_size

    def test_prefix_case_insensitive(self, site, hidden_listings):
        target = hidden_listings[7]
        results = site.query_name_prefix(target.name[:4].upper())
        assert target in results

    def test_empty_prefix(self, site):
        assert site.query_name_prefix("") == []

    def test_page_size_caps_results(self, hidden_listings):
        tiny = DeepWebSite("x.example", hidden_listings, page_size=2)
        # single-letter prefixes hit many names
        results = tiny.query_name_prefix(hidden_listings[0].name[:1])
        assert len(results) <= 2

    def test_validation(self, hidden_listings):
        with pytest.raises(ValueError):
            DeepWebSite("x", hidden_listings, page_size=0)


class TestProber:
    def test_seeds_harvest_exactly(self, site, hidden_listings):
        prober = DeepWebProber(hidden_listings[:10], max_queries=10)
        result = prober.probe(site)
        assert len(result.harvested) == 10
        assert result.queries_issued == 10

    def test_expansion_exceeds_seed_set(self, site, hidden_listings):
        prober = DeepWebProber(hidden_listings[:10], max_queries=400)
        result = prober.probe(site)
        assert len(result.harvested) > 10
        assert result.coverage > 0.3

    def test_budget_respected(self, site, hidden_listings):
        prober = DeepWebProber(hidden_listings, max_queries=25)
        result = prober.probe(site)
        assert result.queries_issued <= 25

    def test_seeds_outside_site_miss_their_exact_probes(self, hidden_listings):
        site = DeepWebSite("x.example", hidden_listings[:50])
        outsiders = hidden_listings[50:60]
        # budget only covers the exact probes, which all miss
        prober = DeepWebProber(outsiders, max_queries=10)
        result = prober.probe(site)
        assert result.harvested == set()
        assert result.queries_per_record == float("inf")
        # with budget left over, the alphabet roots still surface content
        generous = DeepWebProber(outsiders, max_queries=200).probe(
            DeepWebSite("y.example", hidden_listings[:50])
        )
        assert len(generous.harvested) > 0

    def test_more_budget_more_coverage(self, hidden_listings):
        small_site = DeepWebSite("x.example", hidden_listings)
        low = DeepWebProber(hidden_listings[:5], max_queries=20).probe(small_site)
        site2 = DeepWebSite("y.example", hidden_listings)
        high = DeepWebProber(hidden_listings[:5], max_queries=500).probe(site2)
        assert high.coverage >= low.coverage

    def test_validation(self, hidden_listings):
        with pytest.raises(ValueError):
            DeepWebProber(hidden_listings, max_queries=0)
        with pytest.raises(ValueError):
            DeepWebProber(hidden_listings, prefix_length=0)
