"""Tests for sentiment scoring and the I∆ aggregation bound."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.extract.sentiment import RatingAggregate, influence_bound, polarity


class TestPolarity:
    def test_positive_text(self):
        assert polarity("the food was amazing and delicious") > 0

    def test_negative_text(self):
        assert polarity("terrible service, rude and overpriced") < 0

    def test_neutral_text(self):
        assert polarity("we ordered the pasta at noon") == 0.0

    def test_mixed_text(self):
        value = polarity("amazing food but terrible service")
        assert -1.0 < value < 1.0

    def test_bounds(self):
        assert polarity("amazing amazing amazing") == 1.0
        assert polarity("awful") == -1.0

    def test_generated_reviews_carry_sentiment(self):
        from repro.webgen.text import ReviewTextGenerator

        generator = ReviewTextGenerator(7)
        scored = [polarity(generator.review(f"r{i}")) for i in range(50)]
        # most generated reviews carry net sentiment; balanced ones
        # legitimately cancel to zero
        assert sum(1 for s in scored if s != 0.0) > 25


class TestInfluenceBound:
    def test_values(self):
        assert influence_bound(0) == 2.0
        assert influence_bound(1) == 1.0
        assert influence_bound(9) == pytest.approx(0.2)

    def test_custom_span(self):
        assert influence_bound(4, span=5.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            influence_bound(-1)
        with pytest.raises(ValueError):
            influence_bound(1, span=0.0)


class TestRatingAggregate:
    def test_running_mean(self):
        aggregate = RatingAggregate()
        aggregate.add(1.0)
        aggregate.add(0.0)
        assert aggregate.mean == pytest.approx(0.5)
        assert aggregate.n_reviews == 2

    def test_thumbs_down_after_thumbs_ups(self):
        """The paper's worked example: n thumbs-up then one thumbs-down
        moves the mean by exactly 2/(1+n)... bounded by I∆."""
        for n in (1, 4, 9, 99):
            aggregate = RatingAggregate()
            for _ in range(n):
                aggregate.add(1.0)
            shift = aggregate.add(-1.0)
            assert shift == pytest.approx(2.0 / (1 + n))
            assert shift <= influence_bound(n) + 1e-12

    def test_add_review_text(self):
        aggregate = RatingAggregate()
        aggregate.add_review("amazing delicious food")
        assert aggregate.mean > 0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            RatingAggregate().add(2.0)

    @given(
        st.lists(
            st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=80)
    def test_property_influence_never_exceeds_bound(self, ratings):
        """Every realized influence sits under the I∆ envelope."""
        aggregate = RatingAggregate()
        for n_before, rating in enumerate(ratings):
            shift = aggregate.add(rating)
            assert shift <= influence_bound(n_before) + 1e-9

    def test_average_influence_tracks_inverse_decay(self):
        """Mean realized influence decays like 1/(1+n) on random streams."""
        rng = np.random.default_rng(5)
        shifts_at = {1: [], 10: [], 100: []}
        for _ in range(200):
            aggregate = RatingAggregate()
            stream = rng.uniform(-1, 1, size=101)
            for n_before, rating in enumerate(stream):
                shift = aggregate.add(rating)
                if n_before in shifts_at:
                    shifts_at[n_before].append(shift)
        mean_1 = np.mean(shifts_at[1])
        mean_10 = np.mean(shifts_at[10])
        mean_100 = np.mean(shifts_at[100])
        assert mean_1 > 3 * mean_10 > 3 * mean_100
