"""Tests for the researching-vs-transactional conversion model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traffic.conversion import ConversionModel


def test_rates_increase_with_demand():
    model = ConversionModel(base_rate=0.01, max_rate=0.1)
    demand = np.array([0.0, 10.0, 100.0, 1000.0])
    rates = model.rates(demand)
    assert np.all(np.diff(rates) > 0)
    assert rates[0] == pytest.approx(0.01)
    assert rates[-1] == pytest.approx(0.1)


def test_rates_constant_when_no_demand():
    model = ConversionModel()
    rates = model.rates(np.zeros(5))
    assert np.allclose(rates, model.base_rate)


def test_expected_transactions_head_skewed():
    """Transactions concentrate more than views — the §4.3.2 mechanism."""
    from repro.core.demand import demand_share_of_top_fraction

    rng = np.random.default_rng(1)
    views = np.sort(rng.pareto(1.2, size=2000) * 10)[::-1]
    model = ConversionModel(base_rate=0.01, max_rate=0.2)
    transactions = model.expected_transactions(views)
    assert demand_share_of_top_fraction(
        transactions, 0.1
    ) > demand_share_of_top_fraction(views, 0.1)


def test_sampled_transactions_bounded_by_views():
    model = ConversionModel()
    views = np.arange(0, 500, dtype=float)
    transactions = model.sample_transactions(views, rng=2)
    assert np.all(transactions <= views)
    assert np.all(transactions >= 0)


def test_sampling_deterministic():
    model = ConversionModel()
    views = np.full(100, 50.0)
    a = model.sample_transactions(views, rng=3)
    b = model.sample_transactions(views, rng=3)
    assert np.array_equal(a, b)


def test_validation():
    with pytest.raises(ValueError):
        ConversionModel(base_rate=0.0)
    with pytest.raises(ValueError):
        ConversionModel(base_rate=0.2, max_rate=0.1)
    with pytest.raises(ValueError):
        ConversionModel(popularity_exponent=0.0)
    model = ConversionModel()
    with pytest.raises(ValueError):
        model.rates(np.array([-1.0]))


def test_transactional_value_add_flatter():
    """If reviews track transactions, VA on transactional demand hugs
    y=1 while VA on researching demand declines — the paper's proposed
    resolution of the 'counter-intuitive' Figure 8."""
    from repro.core.valueadd import value_add_curve
    from repro.pipeline.config import ExperimentConfig
    from repro.pipeline.experiments import build_traffic_dataset

    config = ExperimentConfig(
        scale="tiny",
        traffic_entities=5000,
        traffic_events=60000,
        traffic_cookies=10000,
        seed=5,
    )
    dataset = build_traffic_dataset("amazon", config)
    model = ConversionModel(base_rate=0.01, max_rate=0.25, popularity_exponent=0.5)
    transactional = model.expected_transactions(dataset.search_demand)

    researching_curve = value_add_curve(dataset.search_demand, dataset.reviews)
    transactional_curve = value_add_curve(transactional, dataset.reviews)
    # transactional VA sits above researching VA toward the head:
    # popular items convert better, closing the gap to proportionality
    tail = slice(1, 6)
    assert np.all(
        transactional_curve.relative_value_add[tail]
        >= researching_curve.relative_value_add[tail] - 1e-9
    )
