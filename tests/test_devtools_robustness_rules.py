"""Tests for the ROB error-discipline rules (ROB001–ROB002)."""

from __future__ import annotations

import textwrap

from repro.devtools.lint import check_source


def _rules(source: str, select=("ROB",)):
    findings = check_source(textwrap.dedent(source), select=list(select))
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# ROB001: except clauses that swallow the error
# ---------------------------------------------------------------------------


def test_rob001_flags_bare_except_pass():
    assert _rules(
        """
        def f():
            try:
                work()
            except Exception:
                pass
        """
    ) == ["ROB001"]


def test_rob001_flags_swallow_via_continue_and_constant_return():
    assert _rules(
        """
        def f(paths):
            for path in paths:
                try:
                    read(path)
                except OSError:
                    continue

        def g():
            try:
                return parse()
            except (ValueError, KeyError):
                return None
        """
    ) == ["ROB001", "ROB001"]


def test_rob001_clean_when_handler_reraises():
    assert _rules(
        """
        def f():
            try:
                work()
            except OSError as exc:
                raise RuntimeError("context") from exc
        """
    ) == []


def test_rob001_clean_when_handler_logs_or_quarantines():
    assert _rules(
        """
        def f(cache, path):
            try:
                return cache.read(path)
            except OSError:
                cache.quarantine(path, reason="torn read")
                return None

        def g(log):
            try:
                work()
            except ValueError:
                log.warning("work failed", exc_info=True)
        """
    ) == []


def test_rob001_inline_suppression():
    assert _rules(
        """
        def f():
            try:
                work()
            except Exception:  # reprolint: disable=ROB001
                pass
        """
    ) == []


# ---------------------------------------------------------------------------
# ROB002: ad-hoc sleep/retry loops
# ---------------------------------------------------------------------------


def test_rob002_flags_sleep_in_while_loop():
    assert _rules(
        """
        import time

        def f():
            while not ready():
                time.sleep(0.1)
        """
    ) == ["ROB002"]


def test_rob002_flags_aliased_sleep_in_for_loop():
    assert _rules(
        """
        from time import sleep

        def f(attempts):
            for _ in range(attempts):
                if try_once():
                    return True
                sleep(1.0)
            return False
        """
    ) == ["ROB002"]


def test_rob002_ignores_sleep_outside_loops_and_policy_sleep():
    assert _rules(
        """
        import time

        def settle():
            time.sleep(0.01)

        def f(policy, tasks):
            for task in tasks:
                policy.sleep(policy.delay_for(task, 1))
        """
    ) == []
