"""Tests for the review/non-review text generator."""

from __future__ import annotations

import pytest

from repro.webgen.text import ReviewTextGenerator


def test_deterministic():
    a = ReviewTextGenerator(5)
    b = ReviewTextGenerator(5)
    assert a.review("Cafe X") == b.review("Cafe X")
    assert a.non_review("Cafe X") == b.non_review("Cafe X")


def test_review_mentions_entity():
    text = ReviewTextGenerator(1).review("Blue Bistro")
    assert "Blue Bistro" in text


def test_non_review_mentions_entity():
    text = ReviewTextGenerator(2).non_review("Blue Bistro")
    assert "Blue Bistro" in text


def test_classes_use_different_vocabulary():
    generator = ReviewTextGenerator(3)
    reviews = " ".join(generator.review(f"r{i}") for i in range(20))
    listings = " ".join(generator.non_review(f"l{i}") for i in range(20))
    # signature words appear on their own side only
    assert "i " in reviews.lower() or "we " in reviews.lower()
    assert "hours" in listings
    assert "hours" not in reviews


def test_labeled_corpus_mixture():
    corpus = ReviewTextGenerator(4).labeled_corpus(300, review_fraction=0.5)
    assert len(corpus) == 300
    positives = sum(1 for _, label in corpus if label)
    assert 100 <= positives <= 200


def test_labeled_corpus_extremes():
    all_reviews = ReviewTextGenerator(5).labeled_corpus(20, review_fraction=1.0)
    assert all(label for _, label in all_reviews)
    none_reviews = ReviewTextGenerator(6).labeled_corpus(20, review_fraction=0.0)
    assert not any(label for _, label in none_reviews)


def test_bad_fraction_rejected():
    with pytest.raises(ValueError):
        ReviewTextGenerator(7).labeled_corpus(10, review_fraction=1.5)


def test_sentence_count_scales_length():
    generator = ReviewTextGenerator(8)
    short = generator.review("X", sentences=2)
    long = generator.review("X", sentences=10)
    assert len(long) > len(short)
