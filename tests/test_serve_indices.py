"""repro.serve.indices: CSR parity, coverage tables, manifest round-trip."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.coverage import k_coverage_curves
from repro.core.graph import EntitySiteGraph
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.runall import MANIFEST_NAME, write_manifest
from repro.serve.indices import Manifest, build_index, load_manifest

CONFIG = ExperimentConfig(scale="tiny", seed=0).scaled_down(400)

MANIFEST = Manifest(
    config=CONFIG,
    spread_pairs=(("restaurants", "phone"), ("books", "isbn")),
    traffic_sites=("imdb",),
    artifacts=("table1.txt",),
)


@pytest.fixture(scope="module")
def index():
    return build_index(MANIFEST)


def test_index_shape(index):
    assert set(index.pairs) == {("restaurants", "phone"), ("books", "isbn")}
    assert index.default_attribute == {"restaurants": "phone", "books": "isbn"}
    assert set(index.demand) == {"imdb"}
    assert index.build_seconds > 0


def test_transpose_matches_graph_neighbors(index):
    """entity→sites CSR must agree with EntitySiteGraph adjacency.

    Graph node ids put site ``s`` at ``n_entities + s``, so the graph's
    neighbour list for an entity is exactly the transpose row shifted.
    """
    for pair in index.pairs.values():
        graph = EntitySiteGraph(pair.incidence)
        for entity in range(pair.n_entities):
            sites = pair.sites_of_entity(entity)
            assert np.array_equal(
                sites + pair.n_entities, graph.neighbors(entity)
            )
            # Ascending site order is part of the response contract.
            assert np.all(np.diff(sites) >= 0)


def test_entity_site_round_trip(index):
    pair = index.pairs[("restaurants", "phone")]
    for entity in range(0, pair.n_entities, max(1, pair.n_entities // 17)):
        for site in pair.sites_of_entity(entity):
            assert entity in pair.entities_on_site(int(site))


def test_coverage_table_matches_direct_curves(index):
    pair = index.pairs[("restaurants", "phone")]
    checkpoints = np.asarray([1, pair.n_sites // 2, pair.n_sites])
    direct = k_coverage_curves(pair.incidence, ks=CONFIG.ks, checkpoints=checkpoints)
    for row, k in enumerate(CONFIG.ks):
        for col, t in enumerate(checkpoints):
            assert pair.coverage_at(k, int(t)) == pytest.approx(
                float(direct.coverage[row, col])
            )


def test_coverage_param_validation(index):
    pair = index.pairs[("books", "isbn")]
    with pytest.raises(KeyError):
        pair.coverage_at(max(CONFIG.ks) + 1, 1)
    with pytest.raises(ValueError):
        pair.coverage_at(1, 0)
    with pytest.raises(ValueError):
        pair.coverage_at(1, pair.n_sites + 1)


def test_resolve_entity_accepts_ids_and_indices(index):
    pair = index.pairs[("restaurants", "phone")]
    label = pair.entity_label(3)
    assert pair.resolve_entity(label) == 3
    assert pair.resolve_entity("3") == 3
    assert pair.resolve_entity("no-such-entity") is None
    assert pair.resolve_entity(str(pair.n_entities)) is None


def test_set_cover_gains_monotone(index):
    pair = index.pairs[("restaurants", "phone")]
    result = pair.set_cover(5)
    assert len(result["selected"]) <= 5
    gains = result["gains"]
    assert all(a >= b for a, b in zip(gains, gains[1:]))
    assert 0 < result["coverage"] <= 1


def test_demand_lookup_shape(index):
    table = index.demand["imdb"]
    for source in ("search", "browse"):
        found = table.lookup(source, 4)
        assert set(found) == {"bin_center", "mean_normalized_demand"}
    with pytest.raises(KeyError):
        table.lookup("carrier-pigeon", 4)
    with pytest.raises(ValueError):
        table.lookup("search", -1)


def test_manifest_round_trip(tmp_path):
    path = write_manifest(tmp_path, CONFIG, ["b.txt", "a.txt"])
    assert path.name == MANIFEST_NAME
    loaded = load_manifest(tmp_path)  # directory form
    assert loaded.config == CONFIG
    assert loaded.artifacts == ("a.txt", "b.txt")  # sorted on write
    assert ("restaurants", "phone") in loaded.spread_pairs
    assert loaded.traffic_sites == ("imdb", "amazon", "yelp")
    assert load_manifest(path).config == CONFIG  # file form


def test_manifest_rejects_wrong_format(tmp_path):
    bogus = tmp_path / MANIFEST_NAME
    bogus.write_text(json.dumps({"format": "not-a-manifest"}))
    with pytest.raises(ValueError, match="expected format"):
        load_manifest(tmp_path)
    with pytest.raises(FileNotFoundError):
        load_manifest(tmp_path / "missing-dir")


def test_build_index_deterministic_identity(index):
    again = build_index(MANIFEST)
    assert again.identity == index.identity
    pair, again_pair = (
        i.pairs[("books", "isbn")] for i in (index, again)
    )
    assert np.array_equal(pair.entity_sites, again_pair.entity_sites)
    assert np.array_equal(pair.coverage, again_pair.coverage)
