"""Tests for the demand CDF/PDF analyses (Figure 6)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.demand import (
    DemandCurves,
    demand_cdf,
    demand_rank_pdf,
    demand_share_of_top_fraction,
)


def test_cdf_simple():
    inventory, cumulative = demand_cdf(np.array([3.0, 1.0, 6.0]))
    assert inventory.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])
    assert cumulative.tolist() == pytest.approx([0.6, 0.9, 1.0])


def test_cdf_all_zero():
    __, cumulative = demand_cdf(np.zeros(4))
    assert cumulative.tolist() == [0.0, 0.0, 0.0, 0.0]


def test_pdf_simple():
    ranks, shares = demand_rank_pdf(np.array([1.0, 3.0]))
    assert ranks.tolist() == [1.0, 2.0]
    assert shares.tolist() == pytest.approx([0.75, 0.25])


def test_share_of_top_fraction():
    demand = np.array([10.0, 5.0, 3.0, 1.0, 1.0])
    assert demand_share_of_top_fraction(demand, 0.2) == pytest.approx(0.5)
    assert demand_share_of_top_fraction(demand, 1.0) == pytest.approx(1.0)
    assert demand_share_of_top_fraction(demand, 0.0) == 0.0


def test_invalid_inputs():
    with pytest.raises(ValueError):
        demand_cdf(np.array([]))
    with pytest.raises(ValueError):
        demand_cdf(np.array([-1.0]))
    with pytest.raises(ValueError):
        demand_cdf(np.array([[1.0, 2.0]]))
    with pytest.raises(ValueError):
        demand_share_of_top_fraction(np.array([1.0]), 2.0)


def test_demand_curves_bundle():
    curves = DemandCurves.from_demand("demo", np.array([5.0, 4.0, 1.0]))
    assert curves.label == "demo"
    assert curves.share_of_top(1 / 3) == pytest.approx(0.5)
    assert curves.share_of_top(1.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        curves.share_of_top(-0.1)


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=80)
def test_property_cdf_monotone_and_bounded(values):
    demand = np.asarray(values)
    inventory, cumulative = demand_cdf(demand)
    assert np.all(np.diff(cumulative) >= -1e-12)
    assert np.all(cumulative <= 1.0 + 1e-12)
    assert inventory[-1] == pytest.approx(1.0)
    if demand.sum() > 0:
        assert cumulative[-1] == pytest.approx(1.0)


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=80)
def test_property_pdf_sorted_and_normalized(values):
    demand = np.asarray(values)
    __, shares = demand_rank_pdf(demand)
    assert np.all(np.diff(shares) <= 1e-12)  # decreasing by rank
    if demand.sum() > 0:
        assert shares.sum() == pytest.approx(1.0)


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=2,
        max_size=50,
    ),
    st.floats(min_value=0.01, max_value=0.99),
)
@settings(max_examples=80)
def test_property_share_monotone_in_fraction(values, fraction):
    demand = np.asarray(values)
    smaller = demand_share_of_top_fraction(demand, fraction / 2)
    larger = demand_share_of_top_fraction(demand, fraction)
    assert smaller <= larger + 1e-12
