"""Tests for the ASCII table/plot and CSV reporting layer."""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.report.figures import ascii_plot, series_to_csv, write_csv
from repro.report.tables import ascii_table, format_float


class TestTables:
    def test_basic_table(self):
        table = ascii_table(["name", "value"], [["alpha", 1], ["beta", 2.5]])
        assert "| name  | value |" in table
        assert "alpha" in table and "2.50" in table

    def test_title_included(self):
        table = ascii_table(["a"], [["x"]], title="Table 9")
        assert table.startswith("Table 9")

    def test_numeric_right_alignment(self):
        table = ascii_table(["n"], [[1], [100]])
        lines = table.splitlines()
        assert "|   1 |" in lines[-3]

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [["only-one"]])

    def test_format_float(self):
        assert format_float(3.0) == "3"
        assert format_float(3.14159) == "3.14"
        assert format_float(3.14159, digits=4) == "3.1416"


class TestPlots:
    def test_basic_plot_renders(self):
        chart = ascii_plot(
            {"linear": ([1, 2, 3], [1, 2, 3])}, width=20, height=6
        )
        assert "[1] linear" in chart
        assert "|" in chart

    def test_log_axes_drop_nonpositive(self):
        chart = ascii_plot(
            {"s": ([0, 1, 10], [0.0, 0.5, 1.0])},
            log_x=True,
            width=20,
            height=6,
        )
        assert "[1] s" in chart

    def test_multiple_series_glyphs(self):
        chart = ascii_plot(
            {"a": ([1, 2], [1, 2]), "b": ([1, 2], [2, 1])}, width=16, height=5
        )
        assert "[1] a" in chart and "[2] b" in chart
        assert "1" in chart and "2" in chart

    def test_title_and_labels(self):
        chart = ascii_plot(
            {"s": ([1], [1])}, title="My Chart", x_label="t", y_label="cov"
        )
        assert chart.startswith("My Chart")
        assert "t vs cov" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"s": ([1], [1])}, width=2)
        with pytest.raises(ValueError):
            ascii_plot({"s": ([1, 2], [1])})
        with pytest.raises(ValueError):
            ascii_plot({"s": ([0], [1])}, log_x=True)  # empty after filter

    def test_constant_series_does_not_crash(self):
        chart = ascii_plot({"flat": ([1, 2, 3], [5, 5, 5])}, width=12, height=4)
        assert "flat" in chart


class TestCsv:
    def test_series_to_csv_long_format(self):
        rows = series_to_csv({"s": ([1, 2], [3.0, 4.0])})
        assert rows[0] == ["series", "x", "y"]
        assert rows[1] == ["s", 1.0, 3.0]
        assert len(rows) == 3

    def test_write_csv_roundtrip(self, tmp_path):
        path = write_csv(
            tmp_path / "out" / "series.csv",
            {"curve": (np.array([1.0, 10.0]), np.array([0.1, 0.9]))},
        )
        assert path.exists()
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["series", "x", "y"]
        assert rows[1] == ["curve", "1.0", "0.1"]
