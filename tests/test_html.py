"""Tests for the HTML page renderer."""

from __future__ import annotations

import pytest

from repro.entities.books import generate_books
from repro.entities.business import generate_listings
from repro.extract.homepages import extract_homepages
from repro.extract.isbn import extract_isbns
from repro.extract.phones import extract_phones
from repro.webgen.html import PageRenderer
from repro.webgen.text import ReviewTextGenerator


@pytest.fixture()
def listings():
    return generate_listings("restaurants", 5, seed=11, homepage_fraction=1.0)


@pytest.fixture()
def books():
    return generate_books(5, seed=12)


def test_listing_page_phones_extractable(listings):
    page = PageRenderer(1).listing_page("dir.example", listings)
    extracted = extract_phones(page)
    assert extracted == {entry.phone for entry in listings}


def test_listing_page_contains_names_and_addresses(listings):
    page = PageRenderer(2).listing_page("dir.example", listings)
    for entry in listings:
        assert entry.name in page
        assert entry.city in page


def test_link_page_homepages_extractable(listings):
    page = PageRenderer(3).link_page("links.example", listings)
    extracted = extract_homepages(page)
    assert extracted == {entry.homepage for entry in listings}


def test_link_block_requires_homepage():
    entry = generate_listings("banks", 5, seed=13, homepage_fraction=0.0)[0]
    with pytest.raises(ValueError):
        PageRenderer(4).link_block(entry)


def test_link_page_skips_homepageless():
    mixed = generate_listings("banks", 10, seed=14, homepage_fraction=0.5)
    page = PageRenderer(5).link_page("links.example", mixed)
    extracted = extract_homepages(page)
    expected = {entry.homepage for entry in mixed if entry.homepage}
    assert extracted == expected


def test_book_page_isbns_extractable(books):
    page = PageRenderer(6).book_page("catalog.example", books)
    assert extract_isbns(page) == {book.isbn13 for book in books}


def test_book_page_formats_vary(books):
    # with many renders, both 10- and 13-digit forms should appear
    renderer = PageRenderer(7)
    pages = "".join(renderer.book_page("c.example", books) for _ in range(20))
    assert "ISBN-10" in pages or any(book.isbn10 in pages for book in books)


def test_review_page_has_phone_and_prose(listings):
    text = ReviewTextGenerator(8)
    page = PageRenderer(9).review_page("blog.example", listings[0], text)
    assert extract_phones(page) == {listings[0].phone}
    assert "Review" in page


def test_noise_page_yields_no_matches():
    renderer = PageRenderer(10)
    page = renderer.noise_page("junk.example", 0)
    assert extract_phones(page) == set()
    # ISBN candidates may appear but must not be checksum+window valid
    # against a real database; extraction itself may rarely validate, so
    # only assert the phone channel here and DB-join rejection elsewhere.


def test_pages_are_wellformed_html(listings):
    page = PageRenderer(11).listing_page("dir.example", listings)
    assert page.startswith("<!DOCTYPE html>")
    assert "</html>" in page
