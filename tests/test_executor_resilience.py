"""Executor resilience: retries, partial failure, pool recovery, timeouts."""

from __future__ import annotations

import pytest

from repro.perf.executor import (
    ExperimentTask,
    TaskExecutionError,
    execute_tasks,
)
from repro.resilience import (
    ENV_FAULTS,
    InjectedTaskError,
    RetryPolicy,
    clear_plan_cache,
)


def _double(payload):
    return payload["x"] * 2


def _task(name, requires=(), provides=(), fn=_double, payload=None):
    return ExperimentTask(
        name=name,
        fn=fn,
        payload=payload if payload is not None else {"x": 1},
        requires=tuple(requires),
        provides=tuple(provides),
    )


@pytest.fixture
def fast_retries(monkeypatch):
    """No real sleeping between attempts; tests assert behaviour, not waits."""
    monkeypatch.setattr(RetryPolicy, "sleep", lambda self, seconds: None)


@pytest.fixture
def faults(monkeypatch):
    """Arm a fault plan through the environment, like --inject-faults does."""

    def _arm(spec: str) -> None:
        monkeypatch.setenv(ENV_FAULTS, spec)
        clear_plan_cache()

    yield _arm
    monkeypatch.delenv(ENV_FAULTS, raising=False)
    clear_plan_cache()


# ---------------------------------------------------------------------------
# Retries
# ---------------------------------------------------------------------------


def test_transient_failure_is_retried_to_success(fast_retries, faults):
    faults("op=error,task=flaky,times=2")
    result = execute_tasks(
        [_task("flaky")], policy=RetryPolicy(max_attempts=3)
    )
    assert result.ok
    assert result.outcomes["flaky"].value == 2
    assert result.outcomes["flaky"].attempts == 3


def test_retry_budget_exhaustion_is_a_structured_failure(fast_retries, faults):
    faults("op=error,task=flaky,times=99")
    result = execute_tasks(
        [_task("flaky"), _task("fine")],
        policy=RetryPolicy(max_attempts=3),
        raise_on_failure=False,
    )
    assert not result.ok
    assert result.outcomes["fine"].value == 2  # independent branch completed
    failure = result.failures["flaky"]
    assert failure.attempts == 3
    assert failure.error_type == "InjectedTaskError"
    assert "injected failure" in failure.message
    assert "InjectedTaskError" in failure.traceback  # full chained traceback


def test_fail_fast_raises_chained_task_execution_error(fast_retries, faults):
    faults("op=error,task=flaky,times=99")
    with pytest.raises(TaskExecutionError, match="flaky.*3 attempt") as info:
        execute_tasks(
            [_task("flaky")],
            policy=RetryPolicy(max_attempts=3),
            raise_on_failure=True,
        )
    assert isinstance(info.value.__cause__, InjectedTaskError)


def test_single_shot_policy_preserves_legacy_semantics(faults):
    faults("op=error,task=flaky,times=1")
    with pytest.raises(TaskExecutionError):
        execute_tasks([_task("flaky")])  # default policy: one attempt


# ---------------------------------------------------------------------------
# Partial-failure semantics
# ---------------------------------------------------------------------------


def test_failed_task_skips_only_its_transitive_dependents(fast_retries, faults):
    faults("op=error,task=producer,times=99")
    tasks = [
        _task("producer", provides=["a"]),
        _task("consumer", requires=["a"], provides=["b"]),
        _task("grandchild", requires=["b"]),
        _task("bystander", provides=["c"]),
        _task("bystander-child", requires=["c"]),
    ]
    result = execute_tasks(
        tasks, policy=RetryPolicy(max_attempts=2), raise_on_failure=False
    )
    assert set(result.failures) == {"producer"}
    assert set(result.skipped) == {"consumer", "grandchild"}
    assert "producer" in result.skipped["consumer"]
    assert "producer" in result.skipped["grandchild"]  # root cause, not chain
    assert set(result.outcomes) == {"bystander", "bystander-child"}


def test_on_complete_fires_once_per_success(fast_retries, faults):
    faults("op=error,task=flaky,times=1")
    seen = []
    result = execute_tasks(
        [_task("flaky"), _task("fine")],
        policy=RetryPolicy(max_attempts=2),
        on_complete=lambda outcome: seen.append(outcome.name),
    )
    assert result.ok
    assert sorted(seen) == ["fine", "flaky"]


# ---------------------------------------------------------------------------
# Pool recovery and degradation
# ---------------------------------------------------------------------------


def test_unbuildable_pool_degrades_to_inline_execution(fast_retries):
    def broken_factory(max_workers):
        raise OSError("no forks today")

    tasks = [_task(f"t{i}", payload={"x": i}) for i in range(4)]
    result = execute_tasks(tasks, workers=2, pool_factory=broken_factory)
    assert result.ok
    assert result.degraded
    assert {n: o.value for n, o in result.outcomes.items()} == {
        f"t{i}": i * 2 for i in range(4)
    }


def test_worker_kill_rebuilds_pool_and_retries(fast_retries, faults):
    faults("op=kill,task=victim,times=1")
    tasks = [_task("victim"), _task("other", payload={"x": 3})]
    result = execute_tasks(
        tasks, workers=2, policy=RetryPolicy(max_attempts=3)
    )
    assert result.ok
    assert result.outcomes["victim"].value == 2
    assert result.outcomes["other"].value == 6
    assert result.pool_rebuilds >= 1
    assert not result.degraded


def test_timeout_expires_attempt_and_recovers(fast_retries, faults):
    faults("op=hang,task=slow,times=1,seconds=2")
    result = execute_tasks(
        [_task("slow")],
        workers=2,
        policy=RetryPolicy(max_attempts=2, timeout_seconds=0.2),
    )
    assert result.ok
    assert result.outcomes["slow"].value == 2
    assert result.outcomes["slow"].attempts == 2
    assert result.pool_rebuilds >= 1


def test_timeout_exhaustion_reports_timeout_error(fast_retries, faults):
    faults("op=hang,task=slow,times=99,seconds=2")
    result = execute_tasks(
        [_task("slow")],
        workers=2,
        policy=RetryPolicy(max_attempts=2, timeout_seconds=0.2),
        raise_on_failure=False,
    )
    assert result.failures["slow"].error_type == "TimeoutError"
    assert result.failures["slow"].attempts == 2
