"""Unit and property tests for the k-coverage analysis."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.coverage import (
    aggregate_coverage_curve,
    coverage_at,
    default_checkpoints,
    k_coverage_curves,
    sites_needed_for_coverage,
)
from repro.core.incidence import BipartiteIncidence


def test_tiny_k1_coverage(tiny_incidence):
    # top-1 site (big.example) covers 4 of 6 entities
    assert coverage_at(tiny_incidence, 1, k=1) == pytest.approx(4 / 6)
    # top-2 adds entity 4 -> 5 of 6
    assert coverage_at(tiny_incidence, 2, k=1) == pytest.approx(5 / 6)
    # all sites -> every entity
    assert coverage_at(tiny_incidence, 4, k=1) == pytest.approx(1.0)


def test_tiny_k2_coverage(tiny_incidence):
    # entities on >=2 sites: 2, 3 (big+mid), 4 (mid+small)
    assert coverage_at(tiny_incidence, 4, k=2) == pytest.approx(3 / 6)


def test_k_coverage_full_curves(tiny_incidence):
    curves = k_coverage_curves(
        tiny_incidence, ks=(1, 2, 3), checkpoints=[1, 2, 3, 4]
    )
    assert curves.curve(1).tolist() == pytest.approx([4 / 6, 5 / 6, 5 / 6, 1.0])
    assert curves.curve(2)[-1] == pytest.approx(3 / 6)
    assert curves.curve(3)[-1] == pytest.approx(0.0)
    assert curves.final_coverage(1) == pytest.approx(1.0)


def test_curve_unknown_k_raises(tiny_incidence):
    curves = k_coverage_curves(tiny_incidence, ks=(1,))
    with pytest.raises(KeyError):
        curves.curve(7)


def test_custom_order_changes_curve(tiny_incidence):
    reversed_order = np.array([3, 2, 1, 0])
    curves = k_coverage_curves(
        tiny_incidence, ks=(1,), checkpoints=[1], order=reversed_order
    )
    # first site in this order is island.example covering 1 of 6
    assert curves.coverage[0, 0] == pytest.approx(1 / 6)


def test_invalid_inputs(tiny_incidence):
    with pytest.raises(ValueError):
        k_coverage_curves(tiny_incidence, ks=())
    with pytest.raises(ValueError):
        k_coverage_curves(tiny_incidence, ks=(0,))
    with pytest.raises(ValueError):
        k_coverage_curves(tiny_incidence, ks=(1,), checkpoints=[0])
    with pytest.raises(ValueError):
        coverage_at(tiny_incidence, -1)
    with pytest.raises(ValueError):
        sites_needed_for_coverage(tiny_incidence, 1.5)


def test_coverage_at_zero_sites(tiny_incidence):
    assert coverage_at(tiny_incidence, 0) == 0.0


def test_sites_needed(tiny_incidence):
    assert sites_needed_for_coverage(tiny_incidence, 0.0) == 0
    assert sites_needed_for_coverage(tiny_incidence, 4 / 6) == 1
    assert sites_needed_for_coverage(tiny_incidence, 1.0) == 4
    assert sites_needed_for_coverage(tiny_incidence, 1.0, k=3) is None


def test_default_checkpoints_cover_range():
    checkpoints = default_checkpoints(1000)
    assert checkpoints[0] == 1
    assert checkpoints[-1] == 1000
    assert np.all(np.diff(checkpoints) > 0)
    assert default_checkpoints(0).size == 0


def test_aggregate_coverage_with_multiplicity():
    inc = BipartiteIncidence.from_site_lists(
        n_entities=3,
        sites=[("a.example", [0, 1]), ("b.example", [2])],
        multiplicities=[[5, 3], [2]],
    )
    checkpoints, fractions = aggregate_coverage_curve(inc, checkpoints=[1, 2])
    assert fractions.tolist() == pytest.approx([8 / 10, 1.0])


def test_aggregate_coverage_without_multiplicity(tiny_incidence):
    __, fractions = aggregate_coverage_curve(tiny_incidence, checkpoints=[4])
    assert fractions[-1] == pytest.approx(1.0)


@st.composite
def incidence_and_order(draw):
    n_entities = draw(st.integers(min_value=1, max_value=15))
    n_sites = draw(st.integers(min_value=1, max_value=6))
    sites = []
    for s in range(n_sites):
        entities = draw(
            st.lists(st.integers(min_value=0, max_value=n_entities - 1), max_size=10)
        )
        sites.append((f"s{s}", entities))
    return BipartiteIncidence.from_site_lists(n_entities=n_entities, sites=sites)


@given(incidence_and_order(), st.integers(min_value=1, max_value=4))
@settings(max_examples=60)
def test_property_coverage_monotone_in_t(inc, k):
    """k-coverage never decreases as more sites are added."""
    checkpoints = list(range(1, inc.n_sites + 1))
    curves = k_coverage_curves(inc, ks=(k,), checkpoints=checkpoints)
    assert np.all(np.diff(curves.curve(k)) >= -1e-12)


@given(incidence_and_order())
@settings(max_examples=60)
def test_property_coverage_decreasing_in_k(inc):
    """At any t, higher redundancy k can only lower coverage."""
    checkpoints = [inc.n_sites]
    curves = k_coverage_curves(inc, ks=(1, 2, 3), checkpoints=checkpoints)
    values = curves.coverage[:, 0]
    assert values[0] >= values[1] >= values[2]


@given(incidence_and_order())
@settings(max_examples=60)
def test_property_matches_bruteforce(inc):
    """Streaming computation agrees with a brute-force recount."""
    order = inc.sites_by_size()
    for t in (1, inc.n_sites):
        counts = np.zeros(inc.n_entities, dtype=int)
        for site in order[:t]:
            counts[inc.site_entities(int(site))] += 1
        for k in (1, 2):
            expected = float(np.mean(counts >= k))
            assert coverage_at(inc, t, k=k) == pytest.approx(expected)
