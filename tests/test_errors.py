"""Tests for the methodology-error analysis (Section 3.5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.coverage import coverage_at
from repro.core.errors import (
    bootstrap_coverage_interval,
    coverage_bias_under_noise,
    estimate_precision_from_sample,
    inject_false_matches,
)


class TestFalseMatches:
    def test_zero_rate_identity(self, tiny_incidence):
        noisy = inject_false_matches(tiny_incidence, 0.0, rng=1)
        assert noisy.n_edges == tiny_incidence.n_edges

    def test_rate_adds_edges(self, random_incidence):
        noisy = inject_false_matches(random_incidence, 0.5, rng=2)
        assert noisy.n_edges > random_incidence.n_edges
        # at most 50% more (duplicates may merge)
        assert noisy.n_edges <= int(random_incidence.n_edges * 1.5) + 1

    def test_negative_rate_rejected(self, tiny_incidence):
        with pytest.raises(ValueError):
            inject_false_matches(tiny_incidence, -0.1, rng=3)

    def test_preserves_structure_fields(self, tiny_incidence):
        noisy = inject_false_matches(tiny_incidence, 0.3, rng=4)
        assert noisy.n_entities == tiny_incidence.n_entities
        assert noisy.site_hosts == tiny_incidence.site_hosts

    def test_bias_direction_matches_paper(self, random_incidence):
        """Section 3.5: false matches over-estimate coverage."""
        clean, noisy = coverage_bias_under_noise(
            random_incidence, rate=1.0, rng=5, top_t=10
        )
        assert noisy >= clean - 1e-12

    @given(st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=25, deadline=None)
    def test_property_noise_never_reduces_coverage(self, rate):
        from repro.core.incidence import BipartiteIncidence

        inc = BipartiteIncidence.from_site_lists(
            n_entities=20,
            sites=[("a", [0, 1, 2]), ("b", [3, 4]), ("c", [0])],
        )
        clean = coverage_at(inc, 2, k=1)
        noisy_inc = inject_false_matches(inc, rate, rng=7)
        noisy = coverage_at(noisy_inc, 2, k=1)
        assert noisy >= clean - 1e-12


class TestPrecisionEstimate:
    def test_point_estimate(self):
        estimate = estimate_precision_from_sample(100, 97)
        assert estimate.precision == pytest.approx(0.97)
        assert estimate.low < 0.97 < estimate.high
        assert 0.0 <= estimate.low and estimate.high <= 1.0

    def test_perfect_sample_interval_below_one(self):
        estimate = estimate_precision_from_sample(50, 50)
        assert estimate.precision == 1.0
        assert estimate.low < 1.0  # Wilson stays honest at p=1

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_precision_from_sample(0, 0)
        with pytest.raises(ValueError):
            estimate_precision_from_sample(10, 11)

    def test_interval_narrows_with_samples(self):
        small = estimate_precision_from_sample(20, 19)
        large = estimate_precision_from_sample(2000, 1900)
        assert (large.high - large.low) < (small.high - small.low)


class TestBootstrap:
    def test_interval_contains_point(self, random_incidence):
        point, low, high = bootstrap_coverage_interval(
            random_incidence, top_t=10, n_bootstrap=100, rng=1
        )
        assert low <= point <= high
        assert 0.0 <= low and high <= 1.0

    def test_deterministic_given_seed(self, random_incidence):
        a = bootstrap_coverage_interval(random_incidence, 5, n_bootstrap=50, rng=3)
        b = bootstrap_coverage_interval(random_incidence, 5, n_bootstrap=50, rng=3)
        assert a == b

    def test_point_matches_coverage_at(self, random_incidence):
        point, __, __ = bootstrap_coverage_interval(
            random_incidence, top_t=7, n_bootstrap=10, rng=4
        )
        assert point == pytest.approx(coverage_at(random_incidence, 7, k=1))

    def test_validation(self, random_incidence):
        with pytest.raises(ValueError):
            bootstrap_coverage_interval(random_incidence, 5, confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_coverage_interval(random_incidence, 5, n_bootstrap=0)
