"""Tests for the staged (and optionally process-parallel) executor."""

from __future__ import annotations

import pytest

from repro.perf.cache import ArtifactCache, configure_cache
from repro.perf.executor import (
    ExecutionResult,
    ExperimentTask,
    execute_tasks,
    stage_tasks,
)
from repro.perf.fingerprint import fingerprint


# Task functions must live at module scope: worker processes import
# them by reference.


def _double(payload):
    return payload["x"] * 2


def _boom(payload):
    raise RuntimeError("intentional")


def _cached_square(payload):
    """Compute x**2 through a cache installed inside the worker."""
    cache = ArtifactCache(payload["cache_dir"])
    configure_cache(cache)
    key = fingerprint("square", x=payload["x"])
    rows = cache.get_records(key)
    if rows is None:
        rows = [{"value": payload["x"] ** 2}]
        cache.put_records(key, rows)
    return rows[0]["value"]


def _task(name, requires=(), provides=(), fn=_double, payload=None):
    return ExperimentTask(
        name=name,
        fn=fn,
        payload=payload if payload is not None else {"x": 1},
        requires=tuple(requires),
        provides=tuple(provides),
    )


# ---------------------------------------------------------------------------
# Staging
# ---------------------------------------------------------------------------


def test_stage_tasks_orders_producers_before_consumers():
    tasks = [
        _task("consumer", requires=["a", "b"]),
        _task("make-a", provides=["a"]),
        _task("make-b", provides=["b"], requires=["a"]),
    ]
    stages = stage_tasks(tasks)
    names = [[t.name for t in stage] for stage in stages]
    assert names == [["make-a"], ["make-b"], ["consumer"]]


def test_stage_tasks_treats_unprovided_labels_as_satisfied():
    # Nothing provides "warm" — e.g. an already-populated cache entry —
    # so the consumer is immediately runnable.
    stages = stage_tasks([_task("consumer", requires=["warm"])])
    assert [[t.name for t in s] for s in stages] == [["consumer"]]


def test_stage_tasks_groups_independent_tasks_into_one_stage():
    stages = stage_tasks([_task("a", provides=["pa"]), _task("b", provides=["pb"])])
    assert len(stages) == 1
    assert {t.name for t in stages[0]} == {"a", "b"}


def test_stage_tasks_rejects_cycles():
    tasks = [
        _task("a", requires=["y"], provides=["x"]),
        _task("b", requires=["x"], provides=["y"]),
    ]
    with pytest.raises(ValueError, match="cycle"):
        stage_tasks(tasks)


def test_stage_tasks_rejects_duplicate_names():
    with pytest.raises(ValueError, match="duplicate"):
        stage_tasks([_task("same"), _task("same")])


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def test_serial_execution_returns_outcomes_and_wall_clock():
    tasks = [_task("t1", payload={"x": 2}), _task("t2", payload={"x": 5})]
    result = execute_tasks(tasks, workers=1)
    assert isinstance(result, ExecutionResult)
    assert result.outcomes["t1"].value == 4
    assert result.outcomes["t2"].value == 10
    assert result.total_seconds >= 0.0
    assert all(o.seconds >= 0.0 for o in result.outcomes.values())


def test_parallel_execution_matches_serial_results():
    tasks = [_task(f"t{i}", payload={"x": i}) for i in range(6)]
    serial = execute_tasks(tasks, workers=1)
    pooled = execute_tasks(tasks, workers=2)
    assert {n: o.value for n, o in pooled.outcomes.items()} == {
        n: o.value for n, o in serial.outcomes.items()
    }


def test_parallel_task_failure_names_the_task():
    tasks = [_task("fine"), _task("broken", fn=_boom)]
    with pytest.raises(RuntimeError, match="broken"):
        execute_tasks(tasks, workers=2)


def test_serial_task_failure_propagates():
    with pytest.raises(RuntimeError, match="intentional"):
        execute_tasks([_task("broken", fn=_boom)], workers=1)


def test_worker_cache_stats_are_reported_per_task(tmp_path):
    spec = {"cache_dir": str(tmp_path)}
    producer = _task(
        "producer", provides=["sq"], fn=_cached_square, payload={"x": 7, **spec}
    )
    consumer = _task(
        "consumer", requires=["sq"], fn=_cached_square, payload={"x": 7, **spec}
    )
    result = execute_tasks([producer, consumer], workers=2)
    assert result.outcomes["producer"].value == 49
    assert result.outcomes["consumer"].value == 49
    assert result.outcomes["producer"].cache_stats.misses == 1
    assert result.outcomes["producer"].cache_stats.puts == 1
    assert result.outcomes["consumer"].cache_stats.hits == 1
    assert result.outcomes["consumer"].cache_stats.misses == 0
