"""Tests for the per-(domain, attribute) generation profiles."""

from __future__ import annotations

import pytest

from repro.entities.domains import (
    ATTRIBUTE_HOMEPAGE,
    ATTRIBUTE_ISBN,
    ATTRIBUTE_PHONE,
    ATTRIBUTE_REVIEWS,
    LOCAL_BUSINESS_DOMAINS,
)
from repro.webgen.profiles import PROFILES, SCALES, get_profile, profile_keys


def test_registry_covers_all_table2_rows():
    # 8 domains x {phone, homepage} + books/isbn + restaurants/reviews
    assert len(PROFILES) == 18
    for domain in LOCAL_BUSINESS_DOMAINS:
        assert (domain, ATTRIBUTE_PHONE) in PROFILES
        assert (domain, ATTRIBUTE_HOMEPAGE) in PROFILES
    assert ("books", ATTRIBUTE_ISBN) in PROFILES
    assert ("restaurants", ATTRIBUTE_REVIEWS) in PROFILES


def test_profile_keys_filter():
    phones = profile_keys(ATTRIBUTE_PHONE)
    assert len(phones) == 8
    assert all(attr == ATTRIBUTE_PHONE for _, attr in phones)
    assert len(profile_keys()) == 18


def test_get_profile_unknown():
    with pytest.raises(KeyError, match="no profile"):
        get_profile("florists", ATTRIBUTE_PHONE)


def test_homepage_more_skewed_than_phone():
    """Homepage profiles encode the larger spread of Figure 2."""
    for domain in LOCAL_BUSINESS_DOMAINS:
        phone = get_profile(domain, ATTRIBUTE_PHONE)
        homepage = get_profile(domain, ATTRIBUTE_HOMEPAGE)
        assert homepage.popularity_exponent > phone.popularity_exponent


def test_generate_tiny_deterministic():
    profile = get_profile("banks", ATTRIBUTE_PHONE)
    a = profile.generate("tiny", seed=5)
    b = profile.generate("tiny", seed=5)
    assert a.site_hosts == b.site_hosts
    assert (a.entity_idx == b.entity_idx).all()


def test_generate_respects_scale():
    profile = get_profile("banks", ATTRIBUTE_PHONE)
    tiny = profile.generate("tiny", seed=1)
    assert tiny.n_entities == SCALES["tiny"].n_entities


def test_distinct_domains_get_distinct_corpora():
    a = get_profile("banks", ATTRIBUTE_PHONE).generate("tiny", seed=1)
    b = get_profile("schools", ATTRIBUTE_PHONE).generate("tiny", seed=1)
    assert (a.entity_idx.shape != b.entity_idx.shape) or (
        not (a.entity_idx == b.entity_idx).all()
    )


def test_review_profile_attaches_multiplicity():
    inc = get_profile("restaurants", ATTRIBUTE_REVIEWS).generate("tiny", seed=2)
    assert inc.multiplicity is not None
    assert inc.total_pages() >= inc.n_edges


def test_non_review_profiles_have_no_multiplicity():
    inc = get_profile("restaurants", ATTRIBUTE_PHONE).generate("tiny", seed=2)
    assert inc.multiplicity is None


def test_books_site_factor_override():
    books = get_profile("books", ATTRIBUTE_ISBN)
    inc = books.generate("tiny", seed=3)
    # site_factor=1.0 -> about as many model sites as entities (plus islands)
    assert inc.n_sites < 2 * SCALES["tiny"].n_entities


def test_avg_mentions_tracks_table2_targets():
    """Generated corpora hit the Table 2 sites-per-entity targets."""
    scale = SCALES["small"]
    for domain, attribute in [
        ("restaurants", ATTRIBUTE_PHONE),
        ("hotels", ATTRIBUTE_PHONE),
        ("home", ATTRIBUTE_HOMEPAGE),
    ]:
        profile = get_profile(domain, attribute)
        inc = profile.generate(scale, seed=4)
        target = profile.target_sites_per_entity
        measured = inc.average_sites_per_entity()
        assert 0.8 * target <= measured <= 1.2 * target, (domain, attribute)
