"""Tests for concentration statistics and power-law fitting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.concentration import (
    fit_power_law,
    gini_coefficient,
    lorenz_curve,
    top_share,
)


class TestLorenzGini:
    def test_uniform_distribution(self):
        population, share = lorenz_curve(np.ones(10))
        assert np.allclose(population, share)
        assert gini_coefficient(np.ones(10)) == pytest.approx(0.0, abs=1e-9)

    def test_fully_concentrated(self):
        values = np.zeros(100)
        values[0] = 1.0
        gini = gini_coefficient(values)
        assert gini > 0.95

    def test_lorenz_endpoints(self):
        population, share = lorenz_curve(np.array([1.0, 2.0, 3.0]))
        assert population[0] == 0.0 and population[-1] == 1.0
        assert share[0] == 0.0 and share[-1] == pytest.approx(1.0)

    def test_zero_total(self):
        population, share = lorenz_curve(np.zeros(5))
        assert np.allclose(population, share)

    def test_validation(self):
        with pytest.raises(ValueError):
            lorenz_curve(np.array([]))
        with pytest.raises(ValueError):
            lorenz_curve(np.array([-1.0]))

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=40,
        )
    )
    @settings(max_examples=60)
    def test_property_gini_bounds_and_scale_invariance(self, values):
        arr = np.asarray(values)
        gini = gini_coefficient(arr)
        assert -1e-9 <= gini < 1.0
        if arr.sum() > 0:
            assert gini == pytest.approx(gini_coefficient(arr * 3.7), abs=1e-9)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=40,
        )
    )
    @settings(max_examples=60)
    def test_property_lorenz_convex_below_diagonal(self, values):
        population, share = lorenz_curve(np.asarray(values))
        assert np.all(share <= population + 1e-9)
        assert np.all(np.diff(share) >= -1e-12)


class TestTopShare:
    def test_matches_demand_module(self):
        values = np.array([10.0, 5.0, 3.0, 1.0, 1.0])
        assert top_share(values, 0.2) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            top_share(np.array([1.0]), 1.5)
        with pytest.raises(ValueError):
            top_share(np.array([]), 0.5)


class TestPowerLawFit:
    def test_recovers_known_exponent(self):
        rng = np.random.default_rng(1)
        alpha_true = 2.5
        # exact inverse-CDF sampling of the discrete power law
        support = np.arange(1, 100001, dtype=np.float64)
        pmf = support**-alpha_true
        cdf = np.cumsum(pmf / pmf.sum())
        samples = 1 + np.searchsorted(cdf, rng.random(20000))
        fit = fit_power_law(samples, x_min=1)
        assert fit.alpha == pytest.approx(alpha_true, abs=0.1)
        assert fit.n_tail == len(samples)

    def test_steeper_data_fits_larger_alpha(self):
        rng = np.random.default_rng(2)
        u = rng.random(5000)
        shallow = np.floor((1 - u) ** (-1 / 1.2)).astype(int) + 1
        steep = np.floor((1 - u) ** (-1 / 2.5)).astype(int) + 1
        assert (
            fit_power_law(steep, x_min=1).alpha
            > fit_power_law(shallow, x_min=1).alpha
        )

    def test_x_min_filters_tail(self):
        values = np.concatenate([np.ones(100, dtype=int), np.arange(10, 60)])
        fit = fit_power_law(values, x_min=10)
        assert fit.n_tail == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law(np.arange(1, 5), x_min=0)
        with pytest.raises(ValueError):
            fit_power_law(np.array([1, 2, 3]))  # too few

    def test_site_sizes_are_power_law(self):
        """The generator's site-size curve fits a plausible exponent."""
        from repro.webgen.profiles import get_profile

        incidence = get_profile("restaurants", "phone").generate("tiny", seed=3)
        fit = fit_power_law(incidence.site_sizes(), x_min=1)
        assert 1.1 < fit.alpha < 4.0
