"""Tests for the joint (reviews, demand) site models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traffic.demandmodel import (
    SITE_PROFILES,
    SiteDemandProfile,
    get_site_profile,
)


def test_three_sites_registered():
    assert set(SITE_PROFILES) == {"amazon", "yelp", "imdb"}


def test_get_site_profile_unknown():
    with pytest.raises(KeyError, match="unknown site"):
        get_site_profile("netflix")


def test_review_sampling_deterministic():
    profile = get_site_profile("yelp")
    a = profile.sample_reviews(500, rng=1)
    b = profile.sample_reviews(500, rng=1)
    assert np.array_equal(a, b)


def test_review_counts_nonnegative_capped():
    profile = get_site_profile("amazon")
    reviews = profile.sample_reviews(5000, rng=2)
    assert reviews.min() >= 0
    assert reviews.max() <= profile.max_reviews


def test_zero_review_fraction_enforced():
    profile = get_site_profile("imdb")
    reviews = profile.sample_reviews(20000, rng=3)
    zero_fraction = (reviews == 0).mean()
    assert zero_fraction >= profile.zero_review_fraction * 0.9


def test_review_tail_heavy():
    """A Pareto tail produces entities across several decades."""
    profile = get_site_profile("amazon")
    reviews = profile.sample_reviews(20000, rng=4)
    assert (reviews >= 1000).sum() > 10
    assert (reviews == 0).sum() > 1000


def test_expected_demand_piecewise_continuity():
    profile = get_site_profile("imdb")
    knee = profile.elasticity_knee
    below = profile.expected_demand(np.array([knee]))
    above = profile.expected_demand(np.array([knee + 1e-9]))
    assert below[0] == pytest.approx(above[0], rel=1e-6)


def test_expected_demand_monotone_increasing():
    for profile in SITE_PROFILES.values():
        n = np.arange(0, 2000)
        demand = profile.expected_demand(n)
        assert np.all(np.diff(demand) >= -1e-12), profile.name


def test_expected_demand_sublinear_for_yelp_amazon():
    """Yelp and Amazon: E[k|n]/(1+n) decreasing — the tail-value claim."""
    for name in ("yelp", "amazon"):
        profile = get_site_profile(name)
        n = np.arange(0, 5000)
        ratio = profile.expected_demand(n) / (1.0 + n)
        assert np.all(np.diff(ratio) <= 1e-12), name


def test_expected_demand_imdb_peaks_mid():
    """IMDb: E[k|n]/(1+n) rises below the knee, falls above it."""
    profile = get_site_profile("imdb")
    n = np.arange(0, 5000)
    ratio = profile.expected_demand(n) / (1.0 + n)
    knee = int(profile.elasticity_knee)
    assert ratio[knee // 2] > ratio[0]
    assert ratio[-1] < ratio[knee]


def test_expected_demand_rejects_negative():
    with pytest.raises(ValueError):
        get_site_profile("yelp").expected_demand(np.array([-1]))


def test_demand_weights_normalized_with_floor():
    profile = get_site_profile("yelp")
    reviews = profile.sample_reviews(1000, rng=5)
    weights = profile.demand_weights(reviews, rng=6)
    assert weights.sum() == pytest.approx(1.0)
    assert weights.min() >= profile.demand_floor / 1000 * 0.99


def test_sample_population_bundle():
    profile = get_site_profile("amazon")
    population = profile.sample_population(800, rng=7)
    assert population.n_entities == 800
    assert population.search_weights.sum() == pytest.approx(1.0)
    assert population.browse_weights.sum() == pytest.approx(1.0)


def test_browse_more_concentrated_than_search():
    profile = get_site_profile("imdb")
    population = profile.sample_population(5000, rng=8)
    top = np.argsort(population.search_weights)[::-1][:500]
    search_share = population.search_weights[top].sum()
    browse_share = population.browse_weights[top].sum()
    assert browse_share > search_share


def test_profile_validation():
    with pytest.raises(ValueError):
        SiteDemandProfile("x", -1, 1, 0.1, 10, 1, 1, 10, 0.5, 0.1, 1.1)
    with pytest.raises(ValueError):
        SiteDemandProfile("x", 1, 1, 1.5, 10, 1, 1, 10, 0.5, 0.1, 1.1)
    with pytest.raises(ValueError):
        SiteDemandProfile("x", 1, 1, 0.1, 0, 1, 1, 10, 0.5, 0.1, 1.1)
    with pytest.raises(ValueError):
        SiteDemandProfile("x", 1, 1, 0.1, 10, 1, 1, 10, 0.5, 1.0, 1.1)
