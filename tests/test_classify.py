"""Tests for the supervised site classifier."""

from __future__ import annotations

import pytest

from repro.clustering.classify import SiteClassifier
from repro.crawl.cache import WebCache
from repro.crawl.store import MemoryPageStore, Page
from repro.entities.books import generate_books
from repro.entities.business import generate_listings
from repro.webgen.html import PageRenderer


@pytest.fixture(scope="module")
def labeled_cache():
    renderer = PageRenderer(41)
    listings = generate_listings("restaurants", 60, seed=42)
    books = generate_books(60, seed=43)
    store = MemoryPageStore()
    truth = {}
    for i in range(8):
        host = f"food{i}.example.com"
        chunk = listings[i * 7:(i + 1) * 7]
        store.add(Page.from_url(f"http://{host}/p", renderer.listing_page(host, chunk)))
        truth[host] = "restaurants"
    for i in range(8):
        host = f"reads{i}.example.com"
        chunk = books[i * 7:(i + 1) * 7]
        store.add(Page.from_url(f"http://{host}/p", renderer.book_page(host, chunk)))
        truth[host] = "books"
    return WebCache(store), truth


def test_few_seeds_classify_everything(labeled_cache):
    cache, truth = labeled_cache
    seeds = {
        "food0.example.com": "restaurants",
        "food1.example.com": "restaurants",
        "reads0.example.com": "books",
        "reads1.example.com": "books",
    }
    classifier = SiteClassifier().fit(cache, seeds)
    result = classifier.classify(cache)
    assert result.accuracy(truth) >= 0.9


def test_assignment_and_confidences(labeled_cache):
    cache, truth = labeled_cache
    seeds = {"food0.example.com": "restaurants", "reads0.example.com": "books"}
    result = SiteClassifier().fit(cache, seeds).classify(cache)
    assignment = result.assignment()
    assert set(assignment) == set(cache.hosts())
    assert (result.confidences >= 0).all()


def test_low_confidence_gets_unknown(labeled_cache):
    cache, truth = labeled_cache
    seeds = {"food0.example.com": "restaurants", "reads0.example.com": "books"}
    strict = SiteClassifier(min_confidence=0.999).fit(cache, seeds)
    result = strict.classify(cache)
    # seed hosts match their own centroid strongly, others fall below
    assert "unknown" in result.labels


def test_validation(labeled_cache):
    cache, truth = labeled_cache
    classifier = SiteClassifier()
    with pytest.raises(ValueError):
        classifier.fit(cache, {})
    with pytest.raises(ValueError):
        classifier.fit(cache, {"nonexistent.example.com": "x"})
    with pytest.raises(RuntimeError):
        SiteClassifier().classify(cache)
    with pytest.raises(ValueError):
        SiteClassifier(min_confidence=2.0)


def test_accuracy_requires_overlap(labeled_cache):
    cache, truth = labeled_cache
    seeds = {"food0.example.com": "restaurants", "reads0.example.com": "books"}
    result = SiteClassifier().fit(cache, seeds).classify(cache)
    with pytest.raises(ValueError):
        result.accuracy({})
    with pytest.raises(ValueError):
        result.accuracy({"elsewhere.example.com": "x"})
