"""Tests for the wrapper + linking extraction pipeline."""

from __future__ import annotations

import pytest

from repro.core.incidence import BipartiteIncidence
from repro.entities.books import generate_books
from repro.entities.catalog import EntityDatabase
from repro.extract.evaluation import evaluate_extraction
from repro.linking.pipeline import WrapperLinkingExtractor
from repro.webgen.corpus import CorpusBuilder


@pytest.fixture(scope="module")
def phone_corpus(restaurant_db):
    incidence = BipartiteIncidence.from_site_lists(
        n_entities=len(restaurant_db),
        sites=[
            ("agg.example", list(range(60))),
            ("mid.example", list(range(40, 90))),
            ("blog.example", [5, 6]),
        ],
        entity_ids=restaurant_db.entity_ids,
    )
    return CorpusBuilder(restaurant_db, "phone", seed=92).build(incidence)


def test_high_fidelity_extraction(restaurant_db, phone_corpus):
    extractor = WrapperLinkingExtractor(restaurant_db)
    extracted = extractor.run(phone_corpus.cache)
    score = evaluate_extraction(extracted, phone_corpus.truth)
    assert score.edge_precision > 0.98
    assert score.edge_recall > 0.9
    assert extractor.stats.link_rate > 0.9


def test_stats_populated(restaurant_db, phone_corpus):
    extractor = WrapperLinkingExtractor(restaurant_db)
    extractor.run(phone_corpus.cache)
    stats = extractor.stats
    assert stats.pages_scanned == phone_corpus.cache.n_pages()
    assert stats.records_induced >= stats.mentions_lifted
    assert stats.mentions_lifted >= stats.mentions_linked


def test_threshold_affects_linking(restaurant_db, phone_corpus):
    strict = WrapperLinkingExtractor(restaurant_db, threshold=0.99)
    lenient = WrapperLinkingExtractor(restaurant_db, threshold=0.6)
    strict_inc = strict.run(phone_corpus.cache)
    lenient_inc = lenient.run(phone_corpus.cache)
    assert strict_inc.n_edges <= lenient_inc.n_edges


def test_rejects_database_without_payloads():
    from repro.entities.catalog import Entity

    entities = [
        Entity(entity_id="banks:00000001", domain_key="banks", keys={"phone": "4155550123"})
    ]
    database = EntityDatabase("banks", entities)
    with pytest.raises(ValueError, match="no listing payloads"):
        WrapperLinkingExtractor(database)


def test_link_rate_zero_when_nothing_lifted(restaurant_db):
    from repro.linking.pipeline import WrapperLinkingStats

    stats = WrapperLinkingStats()
    assert stats.link_rate == 0.0
