"""Tests for the host → entity aggregation."""

from __future__ import annotations

import pytest

from repro.crawl.hostindex import HostIndex


def test_record_and_incidence(restaurant_db):
    index = HostIndex(restaurant_db)
    ids = restaurant_db.entity_ids
    index.record("agg.example", ids[0])
    index.record("agg.example", ids[1])
    index.record("agg.example", ids[0], pages=2)  # same entity again
    index.record("blog.example", ids[1])

    assert index.n_hosts == 2
    assert index.entities_of("agg.example") == {ids[0], ids[1]}
    assert index.entities_of("unknown.example") == set()

    incidence = index.to_incidence()
    assert incidence.n_sites == 2
    assert incidence.n_entities == len(restaurant_db)
    assert incidence.n_edges == 3
    assert incidence.multiplicity is None


def test_multiplicity_counts_pages(restaurant_db):
    index = HostIndex(restaurant_db)
    ids = restaurant_db.entity_ids
    index.record("agg.example", ids[0], pages=3)
    index.record("agg.example", ids[0])
    incidence = index.to_incidence(with_multiplicity=True)
    assert incidence.total_pages() == 4


def test_record_page(restaurant_db):
    index = HostIndex(restaurant_db)
    ids = set(restaurant_db.entity_ids[:3])
    index.record_page("agg.example", ids)
    assert index.entities_of("agg.example") == ids


def test_unknown_entity_rejected(restaurant_db):
    index = HostIndex(restaurant_db)
    with pytest.raises(KeyError):
        index.record("agg.example", "restaurants:99999999")


def test_bad_page_count_rejected(restaurant_db):
    index = HostIndex(restaurant_db)
    with pytest.raises(ValueError):
        index.record("agg.example", restaurant_db.entity_ids[0], pages=0)


def test_incidence_entity_ids_aligned(restaurant_db):
    index = HostIndex(restaurant_db)
    eid = restaurant_db.entity_ids[7]
    index.record("one.example", eid)
    incidence = index.to_incidence()
    entity_index = incidence.site_entities(0)[0]
    assert incidence.entity_ids[entity_index] == eid
