"""Integration tests: the paper's qualitative findings hold end-to-end.

Each test asserts one of the claims from the paper's evaluation, on the
synthetic substrate at ``small`` scale.  Absolute numbers differ from
the paper (the corpus is ~1000x smaller); the *shapes* — who wins, what
decays faster, what stays connected — are what these tests pin down.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coverage import coverage_at, sites_needed_for_coverage
from repro.core.graph import EntitySiteGraph, GraphMetrics, robustness_curve
from repro.discovery.bootstrap import BootstrapExpansion
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.experiments import (
    build_traffic_dataset,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure8,
    run_spread,
)
from repro.webgen.profiles import get_profile


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(scale="small", seed=0)


@pytest.fixture(scope="module")
def restaurants_phone(config):
    return run_spread("restaurants", "phone", config)


@pytest.fixture(scope="module")
def restaurants_homepage(config):
    return run_spread("restaurants", "homepage", config)


class TestSpreadFindings:
    def test_head_sites_dominate_phone_coverage(self, restaurants_phone):
        """Fig 1(a): top-10 sites cover ~93%, top-100 near 100%."""
        inc = restaurants_phone.incidence
        assert coverage_at(inc, 10, k=1) > 0.85
        assert coverage_at(inc, 100, k=1) > 0.97

    def test_redundancy_needs_many_more_sites(self, restaurants_phone):
        """Fig 1(a): k=5 coverage needs far more sites than k=1."""
        inc = restaurants_phone.incidence
        sites_k1 = sites_needed_for_coverage(inc, 0.9, k=1)
        sites_k5 = sites_needed_for_coverage(inc, 0.9, k=5)
        assert sites_k1 is not None and sites_k5 is not None
        assert sites_k5 > 10 * sites_k1

    def test_homepage_more_spread_than_phone(
        self, restaurants_phone, restaurants_homepage
    ):
        """Fig 2(a) vs 1(a): homepages take far more sites to cover."""
        phone_sites = sites_needed_for_coverage(
            restaurants_phone.incidence, 0.9, k=1
        )
        homepage_sites = sites_needed_for_coverage(
            restaurants_homepage.incidence, 0.9, k=1
        )
        assert homepage_sites > 3 * phone_sites

    def test_tail_carries_information(self, restaurants_homepage):
        """The long tail is not optional: top-10 sites leave a gap."""
        assert coverage_at(restaurants_homepage.incidence, 10, k=1) < 0.85

    def test_reviews_aggregate_more_spread_than_entity_coverage(self, config):
        """Fig 4(b) vs 4(a): page share lags entity coverage in the head."""
        result = run_figure4(config)
        checkpoints = result.spread.curves.checkpoints
        k1 = result.spread.curves.curve(1)
        mid = np.searchsorted(checkpoints, 100)
        assert result.aggregate_fractions[mid] < k1[mid]

    def test_greedy_improvement_insignificant(self, config):
        """Fig 5: a careful choice of hosts does not change the story."""
        result = run_figure5(config)
        assert result.max_improvement() < 0.15
        # and the two curves converge at the tail
        assert result.by_greedy[-1] == pytest.approx(result.by_size[-1], abs=0.02)


class TestTailValueFindings:
    def test_demand_concentration_ordering(self, config):
        """Fig 6: IMDb sharpest, Yelp flattest, Amazon between."""
        curves = run_figure6(config)
        for source in ("search", "browse"):
            shares = {
                site: curves[source][site].share_of_top(0.2)
                for site in ("imdb", "amazon", "yelp")
            }
            assert shares["imdb"] > shares["amazon"] > shares["yelp"]

    def test_headline_top20_numbers(self, config):
        """Fig 6(a): IMDb top-20% >= ~90%, Yelp top-20% around 60%."""
        curves = run_figure6(config)
        assert curves["search"]["imdb"].share_of_top(0.2) > 0.85
        assert 0.45 < curves["search"]["yelp"].share_of_top(0.2) < 0.75

    def test_browse_more_concentrated_than_search(self, config):
        curves = run_figure6(config)
        for site in ("imdb", "amazon", "yelp"):
            assert curves["browse"][site].share_of_top(0.2) >= (
                curves["search"][site].share_of_top(0.2) - 0.02
            )

    def test_demand_increases_with_reviews(self, config):
        """Fig 7: entities with more reviews see more demand."""
        for site in ("imdb", "amazon", "yelp"):
            dataset = build_traffic_dataset(site, config)
            from repro.core.valueadd import demand_vs_reviews

            __, means = demand_vs_reviews(dataset.search_demand, dataset.reviews)
            assert means[-1] > means[0]

    def test_value_add_decreasing_for_yelp_amazon(self, config):
        """Fig 8: availability decays faster than demand on the tail."""
        curves = run_figure8(config)
        for site in ("yelp", "amazon"):
            for source in ("search", "browse"):
                curve = curves[site][source]
                assert curve.relative_value_add[0] == pytest.approx(1.0)
                assert curve.is_decreasing_overall(), (site, source)
                # the head group is worth well under the tail group
                assert curve.relative_value_add[-1] < 0.5

    def test_value_add_mid_peak_for_imdb(self, config):
        """Fig 8(c): IMDb rises for mid-popularity, falls at the head."""
        curve = curves = run_figure8(config)["imdb"]["search"]
        values = curve.relative_value_add
        peak = int(np.argmax(values))
        assert 0 < peak < len(values) - 1
        assert values[peak] > 1.2
        assert values[-1] < values[peak]


class TestConnectivityFindings:
    @pytest.fixture(scope="class")
    def phone_incidence(self, config):
        return get_profile("restaurants", "phone").generate(
            config.scale_preset, seed=11
        )

    def test_largest_component_dominates(self, phone_incidence):
        """Table 2: largest component holds ~99%+ of entities."""
        summary = EntitySiteGraph(phone_incidence).components()
        assert summary.fraction_entities_in_largest > 0.985
        assert summary.n_components > 1

    def test_diameter_small(self, phone_incidence):
        """Table 2: diameters are small (d/2 <= ~4 iterations)."""
        metrics = GraphMetrics.measure(phone_incidence, "restaurants", "phone")
        assert 3 <= metrics.diameter <= 10

    def test_avg_sites_per_entity_near_table2(self, phone_incidence):
        assert 25 <= phone_incidence.average_sites_per_entity() <= 40  # paper: 32

    def test_robust_to_removing_top_sites(self, phone_incidence):
        """Fig 9: removing the top-10 sites barely dents connectivity."""
        __, fractions = robustness_curve(phone_incidence, max_removed=10)
        assert fractions[-1] > 0.95

    def test_homepage_robustness_weaker_but_high(self, config):
        inc = get_profile("home", "homepage").generate(config.scale_preset, seed=12)
        __, fractions = robustness_curve(inc, max_removed=10)
        assert fractions[-1] > 0.85

    def test_bootstrap_discovers_component_within_diameter_bound(
        self, phone_incidence
    ):
        """Section 5: iterations <= d/2 for the perfect expansion."""
        graph = EntitySiteGraph(phone_incidence)
        diameter = graph.diameter()
        summary = graph.components()
        expansion = BootstrapExpansion(phone_incidence)
        trace = expansion.random_seed_trial(seed_size=5, rng=13)
        assert trace.iterations <= diameter // 2 + 1
        assert len(trace.entities) >= summary.largest_component_entities
