"""Unit tests for repro.resilience: policy, journal, and fault plans."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.resilience import (
    ENV_FAULTS,
    ENV_JOURNAL_DIR,
    FaultPlan,
    FaultPlanError,
    InjectedTaskError,
    InjectedWorkerKill,
    JournalMismatchError,
    RetryPolicy,
    RunJournal,
    active_plan,
    clear_plan_cache,
    derive_run_id,
    resolve_journal_dir,
)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(timeout_seconds=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1)
    with pytest.raises(ValueError):
        RetryPolicy(max_pool_rebuilds=-1)


def test_single_shot_is_the_pre_resilience_contract():
    policy = RetryPolicy.single_shot()
    assert policy.max_attempts == 1
    assert policy.timeout_seconds is None


def test_delay_is_deterministic_and_bounded():
    policy = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=0.5, seed=7)
    first = policy.delay_for("figure3", 1)
    assert first == policy.delay_for("figure3", 1)  # bit-stable
    assert first != policy.delay_for("figure4", 1)  # decorrelated by task
    assert first != RetryPolicy(
        base_delay=0.1, max_delay=1.0, jitter=0.5, seed=8
    ).delay_for("figure3", 1)  # and by seed
    for attempt in range(1, 12):
        delay = policy.delay_for("figure3", attempt)
        span = min(1.0, 0.1 * 2 ** (attempt - 1))
        assert span * 0.5 <= delay <= span  # jittered half of the span


def test_delay_without_jitter_is_the_exact_span():
    policy = RetryPolicy(base_delay=0.25, max_delay=10.0, jitter=0.0)
    assert policy.delay_for("t", 1) == 0.25
    assert policy.delay_for("t", 2) == 0.5
    assert policy.delay_for("t", 3) == 1.0


def test_delay_rejects_attempt_zero():
    with pytest.raises(ValueError):
        RetryPolicy().delay_for("t", 0)


def test_sleep_skips_non_positive_waits(monkeypatch):
    calls = []
    monkeypatch.setattr(
        "repro.resilience.policy.time.sleep", lambda s: calls.append(s)
    )
    policy = RetryPolicy()
    policy.sleep(0.0)
    policy.sleep(-1.0)
    assert calls == []
    policy.sleep(0.01)
    assert calls == [0.01]


# ---------------------------------------------------------------------------
# RunJournal
# ---------------------------------------------------------------------------


def test_journal_round_trip(tmp_path):
    journal = RunJournal(tmp_path, "run1", "f" * 64)
    journal.record("table1", ("table1",), 0.5)
    journal.record("warm:traffic:siteA", (), 1.25)

    loaded = RunJournal.open(tmp_path, "run1", "f" * 64)
    assert loaded.completed() == {"table1", "warm:traffic:siteA"}
    assert loaded.entries["table1"].artifacts == ("table1",)
    assert loaded.entries["warm:traffic:siteA"].seconds == pytest.approx(1.25)


def test_journal_file_is_always_valid_json_lines(tmp_path):
    journal = RunJournal(tmp_path, "run1", "f" * 64)
    for index in range(5):
        journal.record(f"task{index}", (f"a{index}",), 0.1)
        lines = journal.path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["config_fingerprint"] == "f" * 64
        assert len(lines) == index + 2  # header + one line per completion


def test_journal_fingerprint_guard(tmp_path):
    RunJournal(tmp_path, "run1", "a" * 64).record("t", (), 0.0)
    with pytest.raises(JournalMismatchError, match="different"):
        RunJournal.open(tmp_path, "run1", "b" * 64)


def test_resume_requires_an_existing_journal(tmp_path):
    with pytest.raises(JournalMismatchError, match="no journal"):
        RunJournal.open(tmp_path, "nope", "a" * 64, require_existing=True)


def test_journal_discard(tmp_path):
    journal = RunJournal(tmp_path, "run1", "a" * 64)
    journal.record("t", (), 0.0)
    assert journal.path.is_file()
    journal.discard()
    assert not journal.path.is_file()
    assert journal.completed() == frozenset()


def test_resolve_journal_dir_precedence(tmp_path, monkeypatch):
    explicit = tmp_path / "explicit"
    monkeypatch.setenv(ENV_JOURNAL_DIR, str(tmp_path / "env"))
    assert resolve_journal_dir(explicit) == explicit
    assert resolve_journal_dir(None) == tmp_path / "env"
    monkeypatch.delenv(ENV_JOURNAL_DIR)
    assert resolve_journal_dir(None) == (
        resolve_journal_dir(None).home() / ".cache" / "repro-journals"
    )


def test_derive_run_id_is_a_stable_prefix():
    assert derive_run_id("abcdef0123456789" * 4) == "abcdef012345"


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------


def test_plan_parses_the_documented_grammar():
    plan = FaultPlan.parse(
        "op=error,task=figure3,times=2; op=kill,task=warm:traffic:*;"
        " op=hang,task=table2,seconds=5; op=corrupt,key=3fa9,suffix=.npz"
    )
    ops = [d.op for d in plan.directives]
    assert ops == ["error", "kill", "hang", "corrupt"]
    assert plan.directives[0].times == 2
    assert plan.directives[2].seconds == 5.0
    assert plan.directives[3].suffix == ".npz"


@pytest.mark.parametrize(
    "spec",
    [
        "op=explode,task=x",  # unknown op
        "error,task=x",  # missing key=value
        "op=error,times=nope",  # unparseable int
        "op=error,color=red",  # unknown field
        "op=error,times=-1",  # negative count
    ],
)
def test_plan_rejects_malformed_specs(spec):
    with pytest.raises(FaultPlanError):
        FaultPlan.parse(spec)


def test_task_directives_count_attempts_without_state():
    plan = FaultPlan.parse("op=error,task=figure*,times=2")
    (directive,) = plan.directives
    assert directive.matches_task("figure3", 1)
    assert directive.matches_task("figure3", 2)
    assert not directive.matches_task("figure3", 3)  # retry gets through
    assert not directive.matches_task("table1", 1)


def test_error_fault_raises_and_then_clears():
    plan = FaultPlan.parse("op=error,task=t,times=1")
    with pytest.raises(InjectedTaskError):
        plan.apply_task_faults("t", 1, in_worker=False)
    plan.apply_task_faults("t", 2, in_worker=False)  # attempt 2 survives


def test_kill_fault_degrades_to_an_exception_inline():
    plan = FaultPlan.parse("op=kill,task=t")
    with pytest.raises(InjectedWorkerKill):
        plan.apply_task_faults("t", 1, in_worker=False)


def test_hang_fault_sleeps(monkeypatch):
    naps = []
    monkeypatch.setattr(
        "repro.resilience.faults.time.sleep", lambda s: naps.append(s)
    )
    plan = FaultPlan.parse("op=hang,task=t,seconds=2.5")
    plan.apply_task_faults("t", 1, in_worker=True)
    assert naps == [2.5]


def test_corrupt_blob_mangles_matching_files(tmp_path):
    plan = FaultPlan.parse("op=corrupt,key=3fa9,suffix=.npz")
    matching = tmp_path / "3fa9beef.npz"
    original = bytes(range(64))
    matching.write_bytes(original)
    assert plan.corrupt_blob("3fa9beef", matching)
    assert matching.read_bytes() != original
    assert len(matching.read_bytes()) == len(original)  # same size, torn bytes

    other_key = tmp_path / "aaaa.npz"
    other_key.write_bytes(original)
    assert not plan.corrupt_blob("aaaa", other_key)
    other_suffix = tmp_path / "3fa9cafe.jsonl"
    other_suffix.write_bytes(original)
    assert not plan.corrupt_blob("3fa9cafe", other_suffix)


def test_active_plan_reads_env_and_memoizes(monkeypatch):
    monkeypatch.delenv(ENV_FAULTS, raising=False)
    clear_plan_cache()
    assert active_plan() is None
    monkeypatch.setenv(ENV_FAULTS, "op=error,task=t")
    first = active_plan()
    assert first is not None and first is active_plan()
    clear_plan_cache()
    assert active_plan() is not first  # re-parsed after cache clear


def test_stall_directive_parses_and_matches():
    plan = FaultPlan.parse("op=stall,key=3fa9,suffix=.npz,seconds=1.5")
    (directive,) = plan.directives
    assert directive.op == "stall"
    assert directive.matches_cache_io("3fa9beef", Path("x/3fa9beef.npz"))
    assert not directive.matches_cache_io("aaaa", Path("x/aaaa.npz"))
    assert not directive.matches_cache_io("3fa9beef", Path("x/3fa9beef.json"))
    # stall never fires through the task- or corrupt-scoped matchers
    assert not directive.matches_task("anything", 1)
    assert not directive.matches_blob("3fa9beef", Path("x/3fa9beef.npz"))


def test_stall_cache_io_sleeps_per_matching_directive(monkeypatch):
    naps = []
    monkeypatch.setattr(
        "repro.resilience.faults.time.sleep", lambda s: naps.append(s)
    )
    plan = FaultPlan.parse("op=stall,key=*,seconds=2; op=stall,key=beef,seconds=3")
    slept = plan.stall_cache_io("beefcafe", Path("x/beefcafe.npz"))
    assert naps == [2.0, 3.0]
    assert slept == 5.0
    naps.clear()
    # Stateless: a second touch of the same key stalls again.
    assert plan.stall_cache_io("beefcafe", Path("x/beefcafe.npz")) == 5.0
    assert naps == [2.0, 3.0]
    naps.clear()
    assert plan.stall_cache_io("aaaa", Path("x/aaaa.npz")) == 2.0  # key=* only
