"""repro.store: tiered backends must be byte-identical behind the serve
contract — same endpoints, same bodies, same errors, same cursors."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.perf import ArtifactCache, configure_cache
from repro.pipeline.config import ExperimentConfig
from repro.resilience import ENV_FAULTS, clear_plan_cache
from repro.serve import ServeApp, ServeSettings, build_index
from repro.store import (
    BACKENDS,
    Manifest,
    build_store,
    choose_backend,
    manifest_identity,
    open_backend,
    store_blob_key,
)

CONFIG = ExperimentConfig(scale="tiny", seed=0).scaled_down(400)
MANIFEST = Manifest(
    config=CONFIG,
    spread_pairs=(("restaurants", "phone"),),
    traffic_sites=("imdb",),
    artifacts=(),
)
TIERS = ("ram", "mmap", "sqlite")


@pytest.fixture(autouse=True)
def no_faults(monkeypatch):
    monkeypatch.delenv(ENV_FAULTS, raising=False)
    clear_plan_cache()
    yield
    clear_plan_cache()


@pytest.fixture(scope="module")
def apps(tmp_path_factory):
    """One ServeApp per tier, sharing a module-scoped artifact cache."""
    cache_dir = tmp_path_factory.mktemp("store-cache")
    previous = configure_cache(ArtifactCache(directory=cache_dir))
    built = {}
    try:
        for tier in TIERS:
            built[tier] = ServeApp(
                build_index(MANIFEST, backend=tier),
                ServeSettings(response_cache_entries=0),
            )
        yield built
    finally:
        for app in built.values():
            app.close()
        configure_cache(previous)


def everywhere(apps, path):
    """One request against every tier; asserts byte-identity, returns one."""
    results = {tier: apps[tier].handle(path) for tier in TIERS}
    baseline = results["ram"]
    for tier, result in results.items():
        assert result == baseline, (path, tier, result, baseline)
    return baseline


# ------------------------------------------------------------- identity


def test_all_tiers_share_the_manifest_identity(apps):
    identity = manifest_identity(MANIFEST)
    for tier in TIERS:
        assert apps[tier].index.identity == identity
        assert apps[tier].index.backend == tier


def test_summaries_are_byte_identical(apps):
    payloads = {
        tier: json.dumps(apps[tier].index.summary(), sort_keys=True)
        for tier in TIERS
    }
    assert len(set(payloads.values())) == 1
    # The healthz payload must not leak which tier answered.
    assert "backend" not in apps["sqlite"].index.summary()


def test_metrics_reports_the_backend(apps):
    for tier in TIERS:
        __, body = apps[tier].handle("/metrics")
        assert json.loads(body)["backend"] == tier


# ---------------------------------------------------- endpoint sweeps


def test_probe_paths_are_byte_identical(apps):
    pair = apps["ram"].index.pairs[("restaurants", "phone")]
    host = pair.top_hosts[0]
    probes = [
        "/healthz",
        "/v1/entity/restaurants/0/sites",
        "/v1/entity/restaurants/999999/sites",
        "/v1/entity/restaurants/nosuch/sites",
        "/v1/entity/nosuch/0/sites",
        f"/v1/site/{host}/entities",
        f"/v1/site/{host}/entities?limit=2",
        "/v1/site/nosuch.example/entities",
        "/v1/coverage/restaurants?k=1&t=2",
        "/v1/coverage/restaurants?k=999&t=2",
        "/v1/coverage/restaurants?k=1&t=0",
        "/v1/coverage/restaurants?k=1&t=999999",
        "/v1/coverage/restaurants?k=zap&t=2",
        "/v1/coverage/nosuch?k=1&t=1",
        "/v1/demand/imdb?reviews=3",
        "/v1/demand/imdb?reviews=3&source=browse",
        "/v1/demand/imdb?reviews=3&source=nosuch",
        "/v1/demand/nosuch?reviews=3",
        "/v1/setcover/restaurants?budget=5",
        "/v1/setcover/restaurants?budget=0",
        "/v1/setcover/restaurants?budget=1",
        "/v1/nosuchendpoint",
    ]
    for path in probes:
        everywhere(apps, path)


def test_exhaustive_entity_and_site_sweep(apps):
    pair = apps["ram"].index.pairs[("restaurants", "phone")]
    for entity in range(pair.n_entities):
        label = pair.entity_label(entity)
        everywhere(apps, f"/v1/entity/restaurants/{entity}/sites")
        everywhere(apps, f"/v1/entity/restaurants/{label}/sites")
    for site in range(pair.n_sites):
        host = pair.site_host(site)
        everywhere(apps, f"/v1/site/{host}/entities?limit=50")


def test_coverage_grid_is_byte_identical(apps):
    pair = apps["ram"].index.pairs[("restaurants", "phone")]
    for k in range(0, max(pair.coverage_ks) + 2):
        for t in (0, 1, 2, 5, pair.n_sites, pair.n_sites + 1):
            everywhere(apps, f"/v1/coverage/restaurants?k={k}&t={t}")


def test_seeded_request_stream_is_byte_identical(apps):
    """A seeded mixed-endpoint stream: the differential property test."""
    pair = apps["ram"].index.pairs[("restaurants", "phone")]
    hosts = list(pair.top_hosts) + ["unknown.example"]
    sources = ["search", "browse", "bogus"]
    rng = np.random.default_rng(1729)
    for __ in range(400):
        kind = int(rng.integers(0, 5))
        if kind == 0:
            entity = int(rng.integers(0, pair.n_entities + 3))
            path = f"/v1/entity/restaurants/{entity}/sites"
        elif kind == 1:
            host = hosts[int(rng.integers(0, len(hosts)))]
            limit = int(rng.integers(1, 8))
            path = f"/v1/site/{host}/entities?limit={limit}"
        elif kind == 2:
            k = int(rng.integers(0, 14))
            t = int(rng.integers(0, pair.n_sites + 2))
            path = f"/v1/coverage/restaurants?k={k}&t={t}"
        elif kind == 3:
            reviews = int(rng.integers(0, 40))
            source = sources[int(rng.integers(0, len(sources)))]
            path = f"/v1/demand/imdb?reviews={reviews}&source={source}"
        else:
            budget = int(rng.integers(0, 12))
            path = f"/v1/setcover/restaurants?budget={budget}"
        everywhere(apps, path)


def test_pagination_cursor_chains_match(apps):
    """Walk the full cursor chain per tier; every page byte-identical."""
    pair = apps["ram"].index.pairs[("restaurants", "phone")]
    ranked = pair.incidence.sites_by_size()
    host = pair.site_host(int(ranked[0]))  # the largest site: most pages
    path = f"/v1/site/{host}/entities?limit=2"
    pages = 0
    while path is not None:
        status, body = everywhere(apps, path)
        assert status == 200
        payload = json.loads(body)
        cursor = payload.get("next_cursor")
        path = (
            f"/v1/site/{host}/entities?limit=2&cursor={cursor}"
            if cursor
            else None
        )
        pages += 1
        assert pages < 10_000
    assert pages > 1
    everywhere(apps, f"/v1/site/{host}/entities?limit=2&cursor=garbage")
    everywhere(apps, f"/v1/site/{host}/entities?limit=0")
    everywhere(apps, f"/v1/site/{host}/entities?limit=bogus")


# -------------------------------------------------------- compilation


def test_choose_backend_scales_with_manifest_size():
    assert choose_backend(MANIFEST) == "ram"
    paper = ExperimentConfig(scale="paper", seed=0)
    mid = Manifest(
        config=paper,
        spread_pairs=(("restaurants", "phone"), ("coffee", "menu")),
        traffic_sites=(),
        artifacts=(),
    )
    assert choose_backend(mid) == "mmap"
    huge = Manifest(
        config=paper,
        spread_pairs=tuple((f"domain{i}", "attr") for i in range(200)),
        traffic_sites=(),
        artifacts=(),
    )
    assert choose_backend(huge) == "sqlite"


def test_backends_tuple_is_the_cli_contract():
    assert BACKENDS == ("auto", "ram", "mmap", "sqlite")


def test_build_store_requires_a_cache(tmp_path):
    previous = configure_cache(None)
    try:
        with pytest.raises(RuntimeError, match="artifact cache"):
            build_store(MANIFEST)
    finally:
        configure_cache(previous)


def test_build_store_is_idempotent_and_cache_warm(tmp_path):
    previous = configure_cache(ArtifactCache(directory=tmp_path / "cache"))
    try:
        cold = build_store(MANIFEST)
        warm = build_store(MANIFEST)
        assert cold.identity == warm.identity == manifest_identity(MANIFEST)
        assert cold.sqlite_path == warm.sqlite_path
        assert cold.pair_blobs.keys() == warm.pair_blobs.keys()
        for pair, blobs in cold.pair_blobs.items():
            assert blobs == warm.pair_blobs[pair]
    finally:
        configure_cache(previous)


def test_store_blob_keys_are_stable():
    identity = manifest_identity(MANIFEST)
    key = store_blob_key(identity, "sqlite")
    assert key == store_blob_key(identity, "sqlite")
    assert key != store_blob_key(identity, "meta")


def test_open_backend_rejects_unknown_tier(tmp_path):
    previous = configure_cache(ArtifactCache(directory=tmp_path / "cache"))
    try:
        with pytest.raises(ValueError):
            open_backend(MANIFEST, "tape")
    finally:
        configure_cache(previous)
