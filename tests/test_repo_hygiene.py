"""Tests for the repo-hygiene check (.github/scripts/check_hygiene.py).

The script guards against bytecode debris under ``src/`` — the class of
mess an earlier PR left behind as an orphaned ``__pycache__`` package.
These tests run it in-process via importlib (it is a script, not an
installed module) against both the real repo and synthetic trees.
"""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / ".github" / "scripts" / "check_hygiene.py"


def _load_script():
    spec = importlib.util.spec_from_file_location("check_hygiene", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_real_repo_is_clean(capsys):
    hygiene = _load_script()
    assert hygiene.main([str(REPO_ROOT)]) == 0
    assert "clean" in capsys.readouterr().out


def test_orphan_pyc_is_an_offence(tmp_path, capsys):
    pkg = tmp_path / "src" / "pkg"
    cache = pkg / "__pycache__"
    cache.mkdir(parents=True)
    (pkg / "alive.py").write_text("x = 1\n")
    (cache / "alive.cpython-311.pyc").write_bytes(b"\x00")  # has a source
    (cache / "ghost.cpython-311.pyc").write_bytes(b"\x00")  # orphan
    hygiene = _load_script()
    assert hygiene.main([str(tmp_path)]) == 1
    err = capsys.readouterr().err
    assert "ghost.cpython-311.pyc" in err
    assert "alive.cpython-311.pyc" not in err


def test_fully_orphaned_pycache_dir_is_an_offence(tmp_path, capsys):
    # The exact shape of the original debris: a __pycache__ whose parent
    # package directory contains no .py sources at all.
    cache = tmp_path / "src" / "gone" / "__pycache__"
    cache.mkdir(parents=True)
    (cache / "module.cpython-311.pyc").write_bytes(b"\x00")
    hygiene = _load_script()
    assert hygiene.main([str(tmp_path)]) == 1
    assert "orphan __pycache__" in capsys.readouterr().err


def test_runtime_pycache_next_to_sources_is_allowed(tmp_path, capsys):
    pkg = tmp_path / "src" / "pkg"
    cache = pkg / "__pycache__"
    cache.mkdir(parents=True)
    (pkg / "mod.py").write_text("x = 1\n")
    (cache / "mod.cpython-311.pyc").write_bytes(b"\x00")
    hygiene = _load_script()
    assert hygiene.main([str(tmp_path)]) == 0


def test_missing_src_tree_is_clean(tmp_path):
    hygiene = _load_script()
    assert hygiene.main([str(tmp_path)]) == 0
