"""Unit and property tests for BipartiteIncidence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.incidence import BipartiteIncidence


def test_basic_accessors(tiny_incidence):
    inc = tiny_incidence
    assert inc.n_entities == 6
    assert inc.n_sites == 4
    assert inc.n_edges == 9
    assert inc.site_hosts[0] == "big.example"
    assert inc.site_entities(0).tolist() == [0, 1, 2, 3]
    assert inc.site_sizes().tolist() == [4, 3, 1, 1]


def test_entity_mention_counts(tiny_incidence):
    counts = tiny_incidence.entity_mention_counts()
    assert counts.tolist() == [1, 1, 2, 2, 2, 1]


def test_mentioned_entities_and_average(tiny_incidence):
    assert tiny_incidence.mentioned_entities().tolist() == [0, 1, 2, 3, 4, 5]
    assert tiny_incidence.average_sites_per_entity() == pytest.approx(9 / 6)


def test_unmentioned_entities_counted_in_denominator():
    inc = BipartiteIncidence.from_site_lists(
        n_entities=10, sites=[("a.example", [0, 1])]
    )
    assert len(inc.mentioned_entities()) == 2
    assert inc.average_sites_per_entity() == pytest.approx(1.0)


def test_sites_by_size_order(tiny_incidence):
    order = tiny_incidence.sites_by_size()
    assert order[0] == 0
    assert order[1] == 1
    # ties between the two singleton sites break by index
    assert order.tolist()[2:] == [2, 3]


def test_duplicate_entities_within_site_merged():
    inc = BipartiteIncidence.from_site_lists(
        n_entities=5,
        sites=[("a.example", [1, 1, 2])],
        multiplicities=[[3, 4, 5]],
    )
    assert inc.site_entities(0).tolist() == [1, 2]
    assert inc.site_multiplicities(0).tolist() == [7, 5]


def test_multiplicity_defaults_to_ones(tiny_incidence):
    assert tiny_incidence.site_multiplicities(0).tolist() == [1, 1, 1, 1]
    assert tiny_incidence.total_pages() == tiny_incidence.n_edges


def test_drop_sites(tiny_incidence):
    reduced = tiny_incidence.drop_sites([0])
    assert reduced.n_sites == 3
    assert reduced.n_entities == 6  # denominator unchanged
    assert reduced.site_hosts == ["mid.example", "small.example", "island.example"]
    assert reduced.n_edges == 5


def test_drop_sites_preserves_multiplicity():
    inc = BipartiteIncidence.from_site_lists(
        n_entities=4,
        sites=[("a.example", [0, 1]), ("b.example", [2])],
        multiplicities=[[2, 3], [4]],
    )
    reduced = inc.drop_sites([0])
    assert reduced.site_multiplicities(0).tolist() == [4]
    assert reduced.total_pages() == 4


def test_validation_rejects_bad_pointers():
    with pytest.raises(ValueError):
        BipartiteIncidence(
            n_entities=3,
            site_hosts=["a"],
            site_ptr=np.array([0, 5]),
            entity_idx=np.array([0, 1]),
        )


def test_validation_rejects_out_of_range_entity():
    with pytest.raises(ValueError, match="out of range"):
        BipartiteIncidence(
            n_entities=2,
            site_hosts=["a"],
            site_ptr=np.array([0, 1]),
            entity_idx=np.array([5]),
        )


def test_validation_rejects_zero_multiplicity():
    with pytest.raises(ValueError, match="multiplicities"):
        BipartiteIncidence(
            n_entities=2,
            site_hosts=["a"],
            site_ptr=np.array([0, 1]),
            entity_idx=np.array([0]),
            multiplicity=np.array([0]),
        )


def test_validation_rejects_misaligned_entity_ids():
    with pytest.raises(ValueError, match="entity_ids"):
        BipartiteIncidence(
            n_entities=2,
            site_hosts=["a"],
            site_ptr=np.array([0, 1]),
            entity_idx=np.array([0]),
            entity_ids=["only-one"],
        )


def test_iter_sites(tiny_incidence):
    hosts = [host for host, _ in tiny_incidence.iter_sites()]
    assert hosts == tiny_incidence.site_hosts


@st.composite
def incidence_strategy(draw):
    n_entities = draw(st.integers(min_value=1, max_value=20))
    n_sites = draw(st.integers(min_value=0, max_value=8))
    sites = []
    for s in range(n_sites):
        entities = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_entities - 1),
                max_size=12,
            )
        )
        sites.append((f"s{s}.example", entities))
    return BipartiteIncidence.from_site_lists(n_entities=n_entities, sites=sites)


@given(incidence_strategy())
@settings(max_examples=60)
def test_property_edge_count_consistency(inc):
    """Site sizes and entity mention counts both sum to the edge count."""
    assert inc.site_sizes().sum() == inc.n_edges
    assert inc.entity_mention_counts().sum() == inc.n_edges


@given(incidence_strategy())
@settings(max_examples=60)
def test_property_entities_unique_within_site(inc):
    for s in range(inc.n_sites):
        entities = inc.site_entities(s)
        assert len(np.unique(entities)) == len(entities)


@given(incidence_strategy(), st.integers(min_value=0, max_value=3))
@settings(max_examples=60)
def test_property_drop_sites_reduces_edges(inc, k):
    k = min(k, inc.n_sites)
    reduced = inc.drop_sites(range(k))
    assert reduced.n_sites == inc.n_sites - k
    assert reduced.n_edges <= inc.n_edges
    assert reduced.n_entities == inc.n_entities


def _drop_sites_reference(inc, sites):
    """Set-based reference for drop_sites (the pre-vectorization shape)."""
    dropped = {int(s) for s in sites if 0 <= int(s) < inc.n_sites}
    hosts, idx_parts, mult_parts = [], [], []
    for s in range(inc.n_sites):
        if s in dropped:
            continue
        hosts.append(inc.site_hosts[s])
        lo, hi = int(inc.site_ptr[s]), int(inc.site_ptr[s + 1])
        idx_parts.append(inc.entity_idx[lo:hi])
        if inc.multiplicity is not None:
            mult_parts.append(inc.multiplicity[lo:hi])
    ptr = np.zeros(len(hosts) + 1, dtype=np.int64)
    ptr[1:] = np.cumsum([len(part) for part in idx_parts])
    concat = lambda parts: (  # noqa: E731
        np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    )
    return BipartiteIncidence(
        n_entities=inc.n_entities,
        site_hosts=hosts,
        site_ptr=ptr,
        entity_idx=concat(idx_parts),
        multiplicity=(
            concat(mult_parts) if inc.multiplicity is not None else None
        ),
        entity_ids=inc.entity_ids,
    )


def _assert_incidences_equal(actual, expected):
    assert actual.n_entities == expected.n_entities
    assert actual.site_hosts == expected.site_hosts
    np.testing.assert_array_equal(actual.site_ptr, expected.site_ptr)
    np.testing.assert_array_equal(actual.entity_idx, expected.entity_idx)
    if expected.multiplicity is None:
        assert actual.multiplicity is None
    else:
        np.testing.assert_array_equal(actual.multiplicity, expected.multiplicity)


@given(
    incidence_strategy(),
    st.lists(st.integers(min_value=-3, max_value=12), max_size=8),
)
@settings(max_examples=80)
def test_property_drop_sites_matches_set_based_reference(inc, drops):
    """The vectorized drop_sites is exactly the old per-site filter."""
    _assert_incidences_equal(
        inc.drop_sites(drops), _drop_sites_reference(inc, drops)
    )


def test_drop_sites_parity_with_multiplicity_and_hosts():
    inc = BipartiteIncidence.from_site_lists(
        n_entities=5,
        sites=[
            ("a.example", [0, 1, 2]),
            ("b.example", [1, 3]),
            ("c.example", [4]),
            ("d.example", [0, 4]),
        ],
        multiplicities=[[2, 1, 5], [3, 3], [9], [1, 1]],
    )
    # Out-of-range and negative drops are ignored, exactly as the
    # set-based membership test ignored them.
    drops = [1, 3, 99, -1]
    _assert_incidences_equal(
        inc.drop_sites(drops), _drop_sites_reference(inc, drops)
    )
    surviving = inc.drop_sites(drops)
    assert surviving.site_hosts == ["a.example", "c.example"]
    assert surviving.site_multiplicities(0).tolist() == [2, 1, 5]
    assert surviving.site_multiplicities(1).tolist() == [9]


def test_drop_sites_everything_leaves_an_empty_incidence():
    inc = BipartiteIncidence.from_site_lists(
        n_entities=3, sites=[("a.example", [0]), ("b.example", [1, 2])]
    )
    empty = inc.drop_sites(range(inc.n_sites))
    assert empty.n_sites == 0
    assert empty.n_edges == 0
    assert empty.n_entities == 3
