"""Unit and property tests for the greedy set cover."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.coverage import k_coverage_curves
from repro.core.incidence import BipartiteIncidence
from repro.core.setcover import greedy_coverage_curve, greedy_set_cover


def test_greedy_picks_biggest_first(tiny_incidence):
    order, gains = greedy_set_cover(tiny_incidence)
    assert order[0] == 0  # big.example, 4 fresh entities
    assert gains[0] == 4


def test_greedy_skips_redundant_sites():
    inc = BipartiteIncidence.from_site_lists(
        n_entities=4,
        sites=[
            ("all.example", [0, 1, 2, 3]),
            ("dup.example", [0, 1, 2]),  # fully covered after first pick
            ("also.example", [1, 2]),
        ],
    )
    order, gains = greedy_set_cover(inc)
    assert order.tolist() == [0]
    assert gains.tolist() == [4]


def test_greedy_prefers_complementary_over_size():
    # Classic case: two medium disjoint sites beat overlapping big ones.
    inc = BipartiteIncidence.from_site_lists(
        n_entities=6,
        sites=[
            ("left.example", [0, 1, 2]),
            ("right.example", [3, 4, 5]),
            ("overlap.example", [0, 1, 3, 4]),  # biggest but redundant later
        ],
    )
    order, gains = greedy_set_cover(inc)
    assert order[0] == 2  # largest first
    # after overlap.example, left and right each contribute their fresh part
    assert sum(gains) == 6
    assert len(order) == 3


def test_max_sites_cap(tiny_incidence):
    order, gains = greedy_set_cover(tiny_incidence, max_sites=1)
    assert len(order) == 1
    with pytest.raises(ValueError):
        greedy_set_cover(tiny_incidence, max_sites=-1)


def test_total_gain_equals_union(tiny_incidence):
    __, gains = greedy_set_cover(tiny_incidence)
    assert gains.sum() == len(tiny_incidence.mentioned_entities())


def test_greedy_coverage_curve_saturates(tiny_incidence):
    checkpoints, fractions = greedy_coverage_curve(
        tiny_incidence, checkpoints=np.array([1, 2, 3, 4])
    )
    assert fractions[-1] == pytest.approx(1.0)
    assert np.all(np.diff(fractions) >= 0)


@st.composite
def random_incidence_strategy(draw):
    n_entities = draw(st.integers(min_value=1, max_value=18))
    n_sites = draw(st.integers(min_value=1, max_value=7))
    sites = []
    for s in range(n_sites):
        entities = draw(
            st.lists(st.integers(min_value=0, max_value=n_entities - 1), max_size=12)
        )
        sites.append((f"s{s}", entities))
    return BipartiteIncidence.from_site_lists(n_entities=n_entities, sites=sites)


@given(random_incidence_strategy())
@settings(max_examples=60)
def test_property_greedy_dominates_size_order(inc):
    """Greedy 1-coverage is >= size-order 1-coverage at every t.

    This is the precise sense in which Figure 5's comparison is one-
    sided: greedy can only help.
    """
    checkpoints = list(range(1, inc.n_sites + 1))
    size_curves = k_coverage_curves(inc, ks=(1,), checkpoints=checkpoints)
    __, greedy = greedy_coverage_curve(inc, checkpoints=np.array(checkpoints))
    assert np.all(greedy - size_curves.curve(1) >= -1e-12)


@given(random_incidence_strategy())
@settings(max_examples=60)
def test_property_greedy_matches_naive_greedy(inc):
    """Lazy-heap greedy equals the O(S^2) textbook greedy step-for-step
    in total coverage (ties may reorder picks of equal gain)."""
    order, gains = greedy_set_cover(inc)

    covered = np.zeros(inc.n_entities, dtype=bool)
    naive_gains = []
    remaining = set(range(inc.n_sites))
    while remaining:
        best_site, best_gain = None, 0
        for site in sorted(remaining):
            fresh = int(np.count_nonzero(~covered[inc.site_entities(site)]))
            if fresh > best_gain:
                best_site, best_gain = site, fresh
        if best_site is None:
            break
        covered[inc.site_entities(best_site)] = True
        naive_gains.append(best_gain)
        remaining.discard(best_site)

    # Greedy is deterministic in total coverage and per-step gain profile.
    assert gains.tolist() == naive_gains
