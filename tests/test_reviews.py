"""Tests for the review detector (phone match + classifier)."""

from __future__ import annotations

from repro.entities.ids import format_phone
from repro.extract.reviews import ReviewDetector, strip_tags
from repro.webgen.html import PageRenderer
from repro.webgen.text import ReviewTextGenerator


def test_strip_tags():
    assert strip_tags("<p>hello <b>world</b></p>").split() == ["hello", "world"]


def detector_for(db) -> ReviewDetector:
    return ReviewDetector.trained(db, n_training_documents=300, seed=9)


def test_detects_review_page(restaurant_db):
    detector = detector_for(restaurant_db)
    listing = restaurant_db.get(restaurant_db.entity_ids[0]).payload
    renderer = PageRenderer(1)
    text = ReviewTextGenerator(2)
    page = renderer.review_page("blog.example", listing, text, is_review=True)
    entity_ids, is_review = detector.detect(page)
    assert listing.entity_id in entity_ids
    assert is_review
    assert detector.review_entities(page) == {listing.entity_id}


def test_rejects_directory_page(restaurant_db):
    detector = detector_for(restaurant_db)
    listing = restaurant_db.get(restaurant_db.entity_ids[1]).payload
    renderer = PageRenderer(3)
    text = ReviewTextGenerator(4)
    page = renderer.review_page("dir.example", listing, text, is_review=False)
    entity_ids, is_review = detector.detect(page)
    assert listing.entity_id in entity_ids
    assert not is_review
    assert detector.review_entities(page) == set()


def test_page_without_known_phone(restaurant_db):
    detector = detector_for(restaurant_db)
    page = "<p>a lovely review of nothing in particular</p>"
    assert detector.detect(page) == (set(), False)


def test_page_with_unknown_phone(restaurant_db):
    detector = detector_for(restaurant_db)
    page = f"<p>wonderful! call {format_phone('9995550123')}</p>"
    assert detector.detect(page) == (set(), False)


def test_detector_classifier_accuracy(restaurant_db):
    """The trained detector's classifier generalizes to fresh text."""
    detector = detector_for(restaurant_db)
    held_out = ReviewTextGenerator(99).labeled_corpus(200)
    accuracy = detector.classifier.accuracy(
        [t for t, _ in held_out], [l for _, l in held_out]
    )
    assert accuracy > 0.9
