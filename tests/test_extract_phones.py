"""Tests for the phone extractor."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.entities.ids import PHONE_FORMATS, format_phone
from repro.extract.phones import extract_phones


def test_extracts_common_formats():
    text = (
        "Call (415) 555-0123 or 650-555-0199. "
        "Fax: 212.555.0145, mobile +1-303-555-0177."
    )
    assert extract_phones(text) == {
        "4155550123",
        "6505550199",
        "2125550145",
        "3035550177",
    }


def test_plain_ten_digits():
    assert extract_phones("dial 4155550123 now") == {"4155550123"}


def test_rejects_invalid_prefixes():
    assert extract_phones("number 015-555-0123") == set()
    assert extract_phones("number 415-155-0123") == set()  # exchange starts 1


def test_rejects_n11_area():
    assert extract_phones("call 911-555-0123") == set()


def test_rejects_digit_runs():
    # 12+ digit runs are not phone numbers
    assert extract_phones("order id 123456789012345") == set()


def test_rejects_isbn_like_numbers():
    assert extract_phones("ISBN 9780306406157") == set()


def test_embedded_in_html():
    html = "<p>Phone: (415) 555-0123</p>"
    assert extract_phones(html) == {"4155550123"}


def test_duplicates_deduplicated():
    text = "call 415-555-0123 or (415) 555-0123"
    assert extract_phones(text) == {"4155550123"}


def test_country_code_with_parentheses():
    assert extract_phones("+1 (415) 555-0123") == {"4155550123"}


@given(
    st.integers(min_value=0, max_value=10**10 - 1),
    st.integers(min_value=0, max_value=len(PHONE_FORMATS) - 1),
)
@settings(max_examples=100)
def test_property_rendered_valid_phones_extracted(number, style):
    """Any valid NANP number rendered in any supported style is found."""
    digits = f"{number:010d}"
    from repro.entities.ids import is_valid_nanp_phone

    if not is_valid_nanp_phone(digits):
        return
    text = f"Contact us at {format_phone(digits, style=style)} today"
    assert digits in extract_phones(text)
