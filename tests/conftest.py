"""Shared fixtures for the test suite.

Fixtures are deliberately small (hundreds of entities, thousands of
edges) so the whole suite runs in seconds; shape-sensitive assertions
live in the integration tests, which use the ``tiny``/``small`` scale
presets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.incidence import BipartiteIncidence
from repro.entities.books import BookGenerator
from repro.entities.business import BusinessGenerator
from repro.entities.catalog import EntityDatabase


@pytest.fixture(scope="session")
def restaurant_db() -> EntityDatabase:
    """300 restaurant listings, 90% with homepages."""
    listings = BusinessGenerator(
        "restaurants", seed=101, homepage_fraction=0.9
    ).generate(300)
    return EntityDatabase.from_listings(listings)


@pytest.fixture(scope="session")
def book_db() -> EntityDatabase:
    """200 books with valid ISBNs."""
    return EntityDatabase.from_books(BookGenerator(seed=202).generate(200))


@pytest.fixture()
def tiny_incidence() -> BipartiteIncidence:
    """A hand-built 6-entity, 4-site incidence with known structure.

    Site layout (entity indices):
        big.example    -> 0 1 2 3
        mid.example    -> 2 3 4
        small.example  -> 4
        island.example -> 5
    Entity 5 + island.example form a separate component.
    """
    return BipartiteIncidence.from_site_lists(
        n_entities=6,
        sites=[
            ("big.example", [0, 1, 2, 3]),
            ("mid.example", [2, 3, 4]),
            ("small.example", [4]),
            ("island.example", [5]),
        ],
    )


@pytest.fixture()
def random_incidence() -> BipartiteIncidence:
    """A moderately sized random incidence for algorithmic tests."""
    rng = np.random.default_rng(7)
    n_entities, n_sites = 120, 60
    sites = []
    for s in range(n_sites):
        size = int(rng.integers(1, 30))
        entities = rng.choice(n_entities, size=min(size, n_entities), replace=False)
        sites.append((f"site{s}.example", entities.tolist()))
    return BipartiteIncidence.from_site_lists(n_entities=n_entities, sites=sites)
