"""Tests for the page stores (memory and SQLite)."""

from __future__ import annotations

import pytest

from repro.crawl.store import MemoryPageStore, Page, SqlitePageStore


def stores():
    return [MemoryPageStore(), SqlitePageStore(":memory:")]


@pytest.mark.parametrize("store", stores(), ids=["memory", "sqlite"])
def test_add_and_count(store):
    store.add(Page.from_url("http://a.example/p1", "<html>one</html>"))
    store.add(Page.from_url("http://a.example/p2", "<html>two</html>"))
    store.add(Page.from_url("http://b.example/p1", "<html>three</html>"))
    assert len(store) == 3
    assert store.hosts() == ["a.example", "b.example"]
    assert len(store.pages_for_host("a.example")) == 2
    assert store.pages_for_host("missing.example") == []


@pytest.mark.parametrize("store", stores(), ids=["memory", "sqlite"])
def test_add_many(store):
    pages = [Page.from_url(f"http://h.example/p{i}", f"c{i}") for i in range(10)]
    store.add_many(pages)
    assert len(store) == 10
    retrieved = store.pages_for_host("h.example")
    assert [p.content for p in retrieved] == [f"c{i}" for i in range(10)]


@pytest.mark.parametrize("store", stores(), ids=["memory", "sqlite"])
def test_scan_by_host_sorted(store):
    store.add(Page.from_url("http://zzz.example/p", "z"))
    store.add(Page.from_url("http://aaa.example/p", "a"))
    hosts = [host for host, _ in store.scan_by_host()]
    assert hosts == ["aaa.example", "zzz.example"]


def test_page_from_url_canonicalizes_host():
    page = Page.from_url("https://WWW.Example.COM:443/path", "x")
    assert page.host == "example.com"


def test_sqlite_persists_to_disk(tmp_path):
    path = tmp_path / "crawl.db"
    with SqlitePageStore(path) as store:
        store.add(Page.from_url("http://persist.example/p", "kept"))
    with SqlitePageStore(path) as reopened:
        assert len(reopened) == 1
        assert reopened.pages_for_host("persist.example")[0].content == "kept"


def test_sqlite_context_manager_closes(tmp_path):
    store = SqlitePageStore(tmp_path / "x.db")
    store.close()
    with pytest.raises(Exception):
        store.add(Page.from_url("http://late.example/p", "too late"))
