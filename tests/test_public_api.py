"""Public-API hygiene: every ``__all__`` name resolves, every module imports."""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.clustering",
    "repro.core",
    "repro.crawl",
    "repro.discovery",
    "repro.entities",
    "repro.extract",
    "repro.linking",
    "repro.pipeline",
    "repro.report",
    "repro.traffic",
    "repro.webgen",
]


def all_modules() -> list[str]:
    names = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        for info in pkgutil.iter_modules(package.__path__):
            names.append(f"{package_name}.{info.name}")
    return sorted(set(names))


@pytest.mark.parametrize("module_name", all_modules())
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", None)
    assert exported is not None, f"{package_name} has no __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_is_sorted_and_unique(package_name):
    package = importlib.import_module(package_name)
    exported = list(package.__all__)
    assert len(exported) == len(set(exported)), f"{package_name}: duplicates"


@pytest.mark.parametrize("module_name", all_modules())
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


def test_version_exposed():
    assert repro.__version__ == "1.0.0"
