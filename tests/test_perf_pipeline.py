"""End-to-end determinism of the cached / parallel pipeline.

The contract under test: :class:`ExecutionSettings` may change how fast
``run_everything`` finishes, never what it writes.  Every (workers,
cache) combination must produce byte-identical artifacts.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import pytest

from repro.pipeline.config import ExecutionSettings, ExperimentConfig
from repro.pipeline.runall import run_everything_with_report


@pytest.fixture(scope="module")
def tiny_config():
    """Smallest config that still runs every figure and table."""
    return ExperimentConfig(
        scale="tiny",
        seed=0,
        traffic_entities=2000,
        traffic_events=20000,
        traffic_cookies=5000,
    )


def _digests(directory: Path) -> dict[str, str]:
    return {
        p.name: hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(directory.iterdir())
        if p.is_file()
    }


@pytest.fixture(scope="module")
def reference_run(tiny_config, tmp_path_factory):
    """Serial, uncached artifacts: the pre-perf pipeline's behaviour."""
    out = tmp_path_factory.mktemp("reference")
    names, report = run_everything_with_report(
        out, tiny_config, verbose=False, settings=ExecutionSettings()
    )
    assert report.cache.hits == report.cache.misses == 0
    return names, _digests(out)


@pytest.mark.parametrize("workers", [1, 2])
def test_cold_and_warm_cache_match_uncached_bytes(
    workers, tiny_config, reference_run, tmp_path
):
    names, reference = reference_run
    settings = ExecutionSettings(
        workers=workers, use_cache=True, cache_dir=str(tmp_path / "cache")
    )

    cold_out = tmp_path / "cold"
    cold_names, cold_report = run_everything_with_report(
        cold_out, tiny_config, verbose=False, settings=settings
    )
    assert cold_names == names
    assert _digests(cold_out) == reference
    assert cold_report.cache.misses > 0  # nothing was pre-populated
    assert cold_report.cache.puts > 0

    warm_out = tmp_path / "warm"
    warm_names, warm_report = run_everything_with_report(
        warm_out, tiny_config, verbose=False, settings=settings
    )
    assert warm_names == names
    assert _digests(warm_out) == reference
    assert warm_report.cache.misses == 0  # every artifact came from cache
    assert warm_report.cache.hits > 0
    assert warm_report.cache.hit_rate == 1.0


def test_cold_run_shares_artifacts_across_experiments(tiny_config, tmp_path):
    """Cold cache hits prove experiments dedup shared generation."""
    settings = ExecutionSettings(
        workers=1, use_cache=True, cache_dir=str(tmp_path / "cache")
    )
    __, report = run_everything_with_report(
        tmp_path / "out", tiny_config, verbose=False, settings=settings
    )
    # Figures 1/2/5, Table 2, and Figure 9 all consume the same spread
    # incidences; Figures 6-8 share the traffic datasets.  A cold run
    # therefore hits the cache even though it started empty.
    assert report.cache.hits > 0
    assert 0.0 < report.cache.hit_rate < 1.0


def test_report_timings_cover_every_task(tiny_config, tmp_path):
    __, report = run_everything_with_report(
        tmp_path / "out", tiny_config, verbose=False,
        settings=ExecutionSettings(),
    )
    assert report.total_seconds > 0.0
    named = {t.name for t in report.timings}
    assert {"table1", "table2", "figure9"} <= named
    payload = report.as_dict()
    assert payload["workers"] == 1
    assert payload["cache"]["hits"] == 0


def test_execution_settings_validation():
    with pytest.raises(ValueError):
        ExecutionSettings(workers=0)
    with pytest.raises(ValueError):
        ExecutionSettings(cache_budget_bytes=0)
    settings = ExecutionSettings(workers=3, use_cache=True)
    assert settings.workers == 3
