"""Tests for the US address parser."""

from __future__ import annotations

import pytest

from repro.entities.business import generate_listings
from repro.extract.addresses import extract_addresses, parse_address


def test_parses_canonical_form():
    parsed = parse_address("5725 Pine St, Knoxville, TN 83364")
    assert parsed is not None
    assert parsed.street == "5725 Pine St"
    assert parsed.city == "Knoxville"
    assert parsed.state == "TN"
    assert parsed.zip_code == "83364"


def test_single_line_roundtrip():
    text = "1179 Cedar Ln, Durham, NC 81645"
    parsed = parse_address(text)
    assert parsed.single_line == text


def test_embedded_in_prose():
    text = "Visit us at 42 Main St, Springfield, IL 62704 for lunch."
    parsed = parse_address(text)
    assert parsed is not None
    assert parsed.city == "Springfield"


def test_zip_plus_four():
    parsed = parse_address("9 Oak Ave, Reno, NV 89501-1234")
    assert parsed is not None
    assert parsed.zip_code == "89501"


def test_invalid_state_rejected():
    assert parse_address("12 Oak Ave, Nowhere, ZZ 12345") is None


def test_no_address_returns_none():
    assert parse_address("call 415-555-0123 for details") is None
    assert parse_address("") is None


def test_multi_word_city():
    parsed = parse_address("100 Lake Rd, Baton Rouge, LA 70801")
    assert parsed is not None
    assert parsed.city == "Baton Rouge"


def test_extract_multiple():
    text = (
        "A: 1 Main St, Austin, TX 78701. "
        "B: 2 Oak Ave, Boulder, CO 80301."
    )
    found = extract_addresses(text)
    assert [a.city for a in found] == ["Austin", "Boulder"]


def test_generated_listings_all_parse():
    """Every generated business address parses back to its fields."""
    for listing in generate_listings("hotels", 100, seed=91):
        parsed = parse_address(listing.address)
        assert parsed is not None, listing.address
        assert parsed.city == listing.city
        assert parsed.state == listing.state
        assert parsed.zip_code == listing.zip_code
        assert parsed.street == listing.street
