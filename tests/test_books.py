"""Tests for the book generator."""

from __future__ import annotations

import pytest

from repro.entities.books import BookGenerator, generate_books
from repro.entities.ids import is_valid_isbn10, is_valid_isbn13, normalize_isbn


def test_deterministic():
    assert generate_books(30, seed=1) == generate_books(30, seed=1)


def test_isbns_unique_and_valid():
    books = generate_books(1000, seed=2)
    isbns = [book.isbn13 for book in books]
    assert len(set(isbns)) == len(isbns)
    assert all(is_valid_isbn13(i) for i in isbns)


def test_isbn10_derivation():
    book = generate_books(1, seed=3)[0]
    assert is_valid_isbn10(book.isbn10)
    assert normalize_isbn(book.isbn10) == book.isbn13


def test_years_before_2007():
    books = generate_books(200, seed=4)
    assert all(1950 <= book.year <= 2006 for book in books)


def test_metadata_nonempty():
    for book in generate_books(50, seed=5):
        assert book.title
        assert book.author
        assert book.publisher


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        BookGenerator().generate(-5)


def test_stream_matches_generate():
    assert list(BookGenerator(seed=8).stream(25)) == BookGenerator(seed=8).generate(25)
