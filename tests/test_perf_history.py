"""repro.perf.history: bench-report aggregation and doc maintenance."""

from __future__ import annotations

import json

from repro.perf.history import (
    BEGIN_MARKER,
    END_MARKER,
    collect_bench_rows,
    format_history,
    update_performance_doc,
)

PR2_SHAPE = {
    "benchmark": "workers-x-cache matrix",
    "speedup_vs_serial_nocache": {"parallel+cache": 3.4, "cache-only": 1.8},
    "byte_identical_across_modes": True,
}

PR4_SHAPE = {
    "benchmark": "serve latency/throughput",
    "throughput_rps": 2347.1,
    "latency_ms": {"p50_ms": 1.4, "p95_ms": 3.2, "p99_ms": 5.9},
}

PR7_SHAPE = {
    "benchmark": "repro serve open-loop load generator",
    "mode": "open",
    "throughput_rps": 60123.0,
    "latency_ms": {"p50_ms": 0.2, "p95_ms": 0.9, "p99_ms": 2.1},
    "sweep": {
        "p99_budget_ms": 50.0,
        "knee_rate_rps": 60000.0,
        "knee": {
            "offered_rate_rps": 60000.0,
            "throughput_rps": 60123.0,
            "p99_ms": 2.1,
            "ok": True,
        },
        "rates": [],
    },
}


def _write_reports(root) -> None:
    (root / "BENCH_PR2.json").write_text(json.dumps(PR2_SHAPE))
    (root / "BENCH_PR4.json").write_text(json.dumps(PR4_SHAPE))


def test_collect_orders_by_pr_and_extracts_headlines(tmp_path):
    _write_reports(tmp_path)
    rows = collect_bench_rows(tmp_path)
    assert [row["pr"] for row in rows] == [2, 4]
    assert rows[0]["headline"] == "best 3.4x (parallel+cache), byte-identical"
    assert rows[1]["headline"] == (
        "2347.1 req/s, p50 1.4ms / p95 3.2ms / p99 5.9ms"
    )


def test_collect_extracts_open_loop_knee_headline(tmp_path):
    (tmp_path / "BENCH_PR7.json").write_text(json.dumps(PR7_SHAPE))
    (row,) = collect_bench_rows(tmp_path)
    assert row["pr"] == 7
    assert row["headline"] == (
        "open-loop knee 60000.0 req/s offered (60123.0 achieved), "
        "p99 2.1ms (budget 50.0ms)"
    )


def test_open_loop_report_without_knee_falls_back_to_latency(tmp_path):
    sweepless = {
        key: value for key, value in PR7_SHAPE.items() if key != "sweep"
    }
    (tmp_path / "BENCH_PR7.json").write_text(json.dumps(sweepless))
    (row,) = collect_bench_rows(tmp_path)
    assert row["headline"] == (
        "60123.0 req/s, p50 0.2ms / p95 0.9ms / p99 2.1ms"
    )


def test_collect_tolerates_unreadable_and_unknown_reports(tmp_path):
    (tmp_path / "BENCH_PR3.json").write_text("{not json")
    (tmp_path / "BENCH_PR9.json").write_text(json.dumps({"benchmark": "odd"}))
    (tmp_path / "BENCH_PRx.json").write_text("{}")  # name mismatch: skipped
    rows = collect_bench_rows(tmp_path)
    assert [row["pr"] for row in rows] == [3, 9]
    assert rows[0]["benchmark"].startswith("unreadable")
    assert rows[0]["headline"] == "-"
    assert rows[1]["headline"] == "odd"


def test_collect_warns_by_name_on_unreadable_report(tmp_path, capsys):
    (tmp_path / "BENCH_PR3.json").write_text("{not json")
    (tmp_path / "BENCH_PR9.json").write_text(json.dumps({"benchmark": "ok"}))
    collect_bench_rows(tmp_path)
    err = capsys.readouterr().err
    assert err.count("warning:") == 1  # one line per broken report only
    assert "BENCH_PR3.json" in err
    assert "JSONDecodeError" in err


def test_collect_empty_directory(tmp_path):
    assert collect_bench_rows(tmp_path) == []
    assert format_history([]) == "(no BENCH_PR*.json reports found)"


def test_format_is_an_aligned_markdown_table(tmp_path):
    _write_reports(tmp_path)
    table = format_history(collect_bench_rows(tmp_path))
    lines = table.splitlines()
    assert lines[0].startswith("| PR")
    assert set(lines[1]) <= {"|", "-"}
    assert len({len(line) for line in lines}) == 1  # aligned columns
    assert len(lines) == 4  # header + separator + two PR rows


def test_update_doc_replaces_only_the_marked_section(tmp_path):
    _write_reports(tmp_path)
    doc = tmp_path / "performance.md"
    doc.write_text(
        "# Performance\n\nprose before\n\n"
        f"{BEGIN_MARKER}\nstale table\n{END_MARKER}\n\nprose after\n"
    )
    table = update_performance_doc(doc, collect_bench_rows(tmp_path))
    text = doc.read_text()
    assert "stale table" not in text
    assert table in text
    assert text.startswith("# Performance\n\nprose before")
    assert text.endswith("prose after\n")


def test_update_doc_appends_section_when_markers_absent(tmp_path):
    _write_reports(tmp_path)
    doc = tmp_path / "performance.md"
    doc.write_text("# Performance\n")
    update_performance_doc(doc, collect_bench_rows(tmp_path))
    text = doc.read_text()
    assert "## Benchmark trajectory" in text
    assert text.index(BEGIN_MARKER) < text.index(END_MARKER)
    # And creates the file outright when it does not exist yet.
    fresh = tmp_path / "new.md"
    update_performance_doc(fresh, collect_bench_rows(tmp_path))
    assert BEGIN_MARKER in fresh.read_text()


def test_update_doc_is_idempotent(tmp_path):
    _write_reports(tmp_path)
    doc = tmp_path / "performance.md"
    rows = collect_bench_rows(tmp_path)
    update_performance_doc(doc, rows)
    first = doc.read_text()
    update_performance_doc(doc, rows)
    assert doc.read_text() == first


PR9_SHAPE = {
    "benchmark": "repro.store backend ladder",
    "rungs": [
        {
            "backend": "ram",
            "rss_mb": 812.4,
            "latency_ms": {"p50_ms": 0.3, "p99_ms": 1.1},
        },
        {
            "backend": "mmap",
            "rss_mb": 301.2,
            "latency_ms": {"p50_ms": 0.4, "p99_ms": 1.6},
        },
        {
            "backend": "sqlite",
            "rss_mb": 120.9,
            "latency_ms": {"p50_ms": 0.8, "p99_ms": 3.4},
        },
    ],
    "criteria": {"rss_ratio_max": 0.5, "p99_ratio_max": 5.0, "pass": True},
}


def test_collect_extracts_flat_rss(tmp_path):
    payload = dict(PR4_SHAPE, rss_mb=512.5)
    (tmp_path / "BENCH_PR4.json").write_text(json.dumps(payload))
    rows = collect_bench_rows(tmp_path)
    assert rows[0]["rss_mb"] == 512.5
    table = format_history(rows)
    assert "rss_mb" in table.splitlines()[0]
    assert "512.5" in table


def test_collect_extracts_backend_ladder_rss_and_headline(tmp_path):
    (tmp_path / "BENCH_PR9.json").write_text(json.dumps(PR9_SHAPE))
    rows = collect_bench_rows(tmp_path)
    assert rows[0]["rss_mb"] == {"ram": 812.4, "mmap": 301.2, "sqlite": 120.9}
    assert rows[0]["headline"] == (
        "ram p99 1.1ms, mmap p99 1.6ms, sqlite p99 3.4ms PASS"
    )
    table = format_history(rows)
    assert "ram=812.4 mmap=301.2 sqlite=120.9" in table


def test_reports_without_rss_render_a_dash(tmp_path):
    _write_reports(tmp_path)
    rows = collect_bench_rows(tmp_path)
    assert all("rss_mb" not in row for row in rows)
    table = format_history(rows)
    for line in table.splitlines()[2:]:
        assert "| -" in line
