"""Tests for the entity URL patterns (Section 4.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.traffic.urls import (
    amazon_product_url,
    build_entity_url,
    imdb_title_url,
    parse_entity_url,
    yelp_biz_url,
)


def test_amazon_gp_pattern():
    url = amazon_product_url(42, style=0)
    assert "/gp/product/" in url
    assert parse_entity_url(url) == ("amazon", url.rsplit("/", 1)[-1])


def test_amazon_dp_pattern():
    url = amazon_product_url(42, style=1)
    assert "/dp/" in url
    parsed = parse_entity_url(url)
    assert parsed is not None and parsed[0] == "amazon"


def test_amazon_both_styles_same_key():
    key0 = parse_entity_url(amazon_product_url(7, style=0))[1]
    key1 = parse_entity_url(amazon_product_url(7, style=1))[1]
    assert key0 == key1


def test_yelp_pattern():
    url = yelp_biz_url(3)
    assert parse_entity_url(url) == ("yelp", "business-00000003")


def test_imdb_pattern():
    url = imdb_title_url(12345)
    assert parse_entity_url(url) == ("imdb", "tt0012345")


def test_non_entity_urls_rejected():
    for url in (
        "http://www.amazon.com/help/contact",
        "http://www.yelp.com/search?q=pizza",
        "http://www.imdb.com/chart/top",
        "http://example.com/gp/product/B000000001",
        "http://www.amazon.com/gp/product/tooshort",
    ):
        assert parse_entity_url(url) is None


def test_build_entity_url_dispatch():
    assert "amazon.com" in build_entity_url("amazon", 1)
    assert "yelp.com" in build_entity_url("yelp", 1)
    assert "imdb.com" in build_entity_url("imdb", 1)
    with pytest.raises(ValueError):
        build_entity_url("netflix", 1)


def test_negative_index_rejected():
    with pytest.raises(ValueError):
        yelp_biz_url(-1)
    with pytest.raises(ValueError):
        imdb_title_url(-1)
    with pytest.raises(ValueError):
        amazon_product_url(-1)


@given(st.sampled_from(["amazon", "yelp", "imdb"]), st.integers(0, 10**6))
@settings(max_examples=100)
def test_property_build_parse_roundtrip(site, index):
    """Every built URL parses back to its site with a unique key."""
    url = build_entity_url(site, index)
    parsed = parse_entity_url(url)
    assert parsed is not None
    assert parsed[0] == site
    other = parse_entity_url(build_entity_url(site, index + 1))
    assert other[1] != parsed[1]  # distinct entities -> distinct keys
