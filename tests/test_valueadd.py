"""Tests for the value-add analysis (Figures 7-8)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.valueadd import (
    demand_vs_reviews,
    inverse_information_gain,
    log2_review_bins,
    step_information_gain,
    value_add_curve,
)


class TestInformationGain:
    def test_inverse_values(self):
        gains = inverse_information_gain(np.array([0, 1, 9]))
        assert gains.tolist() == pytest.approx([1.0, 0.5, 0.1])

    def test_inverse_rejects_negative(self):
        with pytest.raises(ValueError):
            inverse_information_gain(np.array([-1]))

    def test_step_values(self):
        gains = step_information_gain(np.array([0, 9, 10, 100]), cutoff=10)
        assert gains.tolist() == [1.0, 1.0, 0.0, 0.0]

    def test_step_rejects_bad_cutoff(self):
        with pytest.raises(ValueError):
            step_information_gain(np.array([1]), cutoff=0)


class TestBins:
    def test_paper_footnote_grouping(self):
        """0 | 1-2 | 3-6 | 7-14 | ... | 1023+ (footnote 4)."""
        n = np.array([0, 1, 2, 3, 6, 7, 14, 15, 1022, 1023, 5000])
        bins, __ = log2_review_bins(n)
        assert bins.tolist() == [0, 1, 1, 2, 2, 3, 3, 4, 9, 10, 10]

    def test_bin_centers(self):
        __, centers = log2_review_bins(np.array([0]))
        assert centers[0] == 0.0
        assert centers[1] == pytest.approx(1.5)  # 1-2
        assert centers[2] == pytest.approx(4.5)  # 3-6
        assert centers[10] == pytest.approx(1023.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            log2_review_bins(np.array([-1]))

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=100)
    def test_property_bin_is_floor_log2(self, n):
        bins, __ = log2_review_bins(np.array([n]))
        assert bins[0] == min(int(np.floor(np.log2(n + 1))), 10)


class TestDemandVsReviews:
    def test_zscore_and_grouping(self):
        demand = np.array([1.0, 2.0, 3.0, 10.0])
        reviews = np.array([0, 0, 2, 2])
        counts, means = demand_vs_reviews(demand, reviews)
        assert counts.tolist() == [0.0, 1.5]
        # z-scored demand means per group; group means ordered as raw means
        assert means[1] > means[0]

    def test_without_normalization(self):
        demand = np.array([2.0, 4.0])
        reviews = np.array([0, 1])
        __, means = demand_vs_reviews(demand, reviews, normalize=False)
        assert means.tolist() == pytest.approx([2.0, 4.0])

    def test_constant_demand_rejected_with_zscore(self):
        with pytest.raises(ValueError):
            demand_vs_reviews(np.ones(4), np.zeros(4, dtype=int))

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            demand_vs_reviews(np.ones(3), np.zeros(2, dtype=int))


class TestValueAdd:
    def test_normalization_at_zero(self):
        demand = np.array([4.0, 4.0, 8.0, 8.0])
        reviews = np.array([0, 0, 1, 1])
        curve = value_add_curve(demand, reviews)
        assert curve.relative_value_add[0] == pytest.approx(1.0)
        # VA(1-2 bin) = 8/(1+1) / 4 = 1.0
        assert curve.relative_value_add[1] == pytest.approx(1.0)

    def test_decreasing_detector(self):
        demand = np.array([4.0, 4.0, 6.0, 6.0])
        reviews = np.array([0, 0, 3, 3])
        curve = value_add_curve(demand, reviews)
        # VA(3) = 6/4/4 = 0.375 -> decreasing overall
        assert curve.is_decreasing_overall()

    def test_requires_zero_review_group(self):
        with pytest.raises(ValueError, match="no zero-review"):
            value_add_curve(np.array([1.0]), np.array([5]))

    def test_requires_nonzero_va0(self):
        with pytest.raises(ValueError, match="zero demand"):
            value_add_curve(np.array([0.0, 1.0]), np.array([0, 1]))

    def test_step_gain_zeroes_head(self):
        demand = np.array([1.0, 1.0, 100.0])
        reviews = np.array([0, 0, 50])
        curve = value_add_curve(
            demand, reviews, information_gain=lambda n: step_information_gain(n, 10)
        )
        assert curve.relative_value_add[-1] == pytest.approx(0.0)

    def test_group_sizes_recorded(self):
        demand = np.array([1.0, 2.0, 3.0])
        reviews = np.array([0, 1, 2])
        curve = value_add_curve(demand, reviews)
        assert curve.group_sizes.tolist() == [1, 2]

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=100.0),
                st.integers(min_value=0, max_value=2000),
            ),
            min_size=2,
            max_size=60,
        )
    )
    @settings(max_examples=60)
    def test_property_va_scale_invariant(self, pairs):
        """VA(n)/VA(0) is invariant to rescaling demand."""
        demand = np.array([p[0] for p in pairs])
        reviews = np.array([p[1] for p in pairs])
        if not np.any(reviews == 0):
            reviews[0] = 0
        base = value_add_curve(demand, reviews)
        scaled = value_add_curve(demand * 37.5, reviews)
        assert np.allclose(base.relative_value_add, scaled.relative_value_add)
