"""Tests for the extension-study runners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pipeline.config import ExperimentConfig
from repro.pipeline.extensions import (
    format_user_tail,
    run_discovery_study,
    run_redundancy_study,
    run_staleness_study,
    run_user_tail_study,
)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        scale="tiny",
        seed=2,
        traffic_entities=2000,
        traffic_events=20000,
        traffic_cookies=4000,
    )


def test_discovery_study(config):
    study = run_discovery_study(config)
    assert study.perfect_iterations <= study.diameter // 2 + 1
    assert study.perfect_coverage > 0.9
    assert 0.0 < study.budgeted_coverage <= study.perfect_coverage + 1e-9
    rendered = study.render()
    assert "diameter" in rendered and "budgeted" in rendered


def test_redundancy_study(config):
    reports = run_redundancy_study(config)
    assert ("books", "isbn") in reports
    for report in reports.values():
        assert report.redundancy_coefficient > 1.0


def test_user_tail_study(config):
    reports = run_user_tail_study(config)
    assert set(reports) == {"imdb", "amazon", "yelp"}
    for report in reports.values():
        assert report.users_touching_tail >= report.tail_demand_share - 1e-9
    table = format_user_tail(reports)
    assert "yelp" in table


def test_user_tail_study_search_source(config):
    reports = run_user_tail_study(config, source="search")
    assert reports["yelp"].n_users > 0


def test_staleness_study(config):
    study = run_staleness_study(config, epochs=3)
    assert len(study.decay) == 3
    assert np.all(np.diff(study.decay) <= 1e-12)
    assert study.policies["largest_first"] >= study.policies["none"] - 1e-9
    assert "re-crawl policy" in study.render()


def test_deterministic(config):
    a = run_discovery_study(config)
    b = run_discovery_study(config)
    assert a == b


# ---------------------------------------------------------------------------
# Artifact-cache integration (warm runs must be indistinguishable)
# ---------------------------------------------------------------------------


@pytest.fixture()
def cache(tmp_path):
    """Install a fresh artifact cache; restore whatever was active."""
    from repro.perf import ArtifactCache, configure_cache

    installed = ArtifactCache(directory=tmp_path)
    previous = configure_cache(installed)
    yield installed
    configure_cache(previous)


def test_discovery_study_warm_cache_round_trips(config, cache):
    cold = run_discovery_study(config)
    puts_after_cold = cache.stats.puts
    assert puts_after_cold >= 1
    warm = run_discovery_study(config)
    assert warm == cold  # plain-scalar record: bit-equal after JSON
    assert cache.stats.hits >= 1  # the study row came from the cache
    assert cache.stats.puts == puts_after_cold  # nothing recomputed


def test_redundancy_study_warm_cache_round_trips(config, cache):
    cold = run_redundancy_study(config)
    puts_after_cold = cache.stats.puts
    warm = run_redundancy_study(config)
    assert warm == cold
    assert cache.stats.hits >= len(cold)  # one cached row per pair
    assert cache.stats.puts == puts_after_cold


def test_staleness_study_warm_cache_round_trips(config, cache):
    cold = run_staleness_study(config, epochs=3)
    puts_after_cold = cache.stats.puts
    warm = run_staleness_study(config, epochs=3)
    # decay is an ndarray, so compare fields rather than dataclass ==.
    assert np.array_equal(warm.decay, cold.decay)
    assert warm.policies == cold.policies
    assert (warm.domain, warm.attribute, warm.epochs) == (
        cold.domain, cold.attribute, cold.epochs
    )
    assert cache.stats.hits >= 1
    assert cache.stats.puts == puts_after_cold


def test_study_cache_key_tracks_the_knobs(config, cache):
    run_staleness_study(config, epochs=3)
    puts_after_cold = cache.stats.puts
    other = run_staleness_study(config, epochs=3, churn=0.2)
    assert cache.stats.puts > puts_after_cold  # different knobs, new entry
    assert len(other.decay) == 3
