"""repro.serve pagination: opaque cursors over the stable CSR order."""

from __future__ import annotations

import json

import pytest

from repro.pipeline.config import ExperimentConfig
from repro.serve import ServeApp, ServeSettings
from repro.serve.indices import Manifest, build_index
from repro.serve.server import _decode_cursor, _encode_cursor

CONFIG = ExperimentConfig(scale="tiny", seed=0).scaled_down(400)

MANIFEST = Manifest(
    config=CONFIG,
    spread_pairs=(("restaurants", "phone"),),
    traffic_sites=("imdb",),
    artifacts=(),
)

#: The fattest host under this seed: 191 entities (found empirically,
#: stable because the corpus generators are seeded).
HOST = "site-000000.restaurants-phone.example.com"
BASE = f"/v1/site/{HOST}/entities"


@pytest.fixture(scope="module")
def index():
    return build_index(MANIFEST)


@pytest.fixture()
def app(index):
    instance = ServeApp(index, ServeSettings(response_cache_entries=0))
    yield instance
    instance.close()


def get(app: ServeApp, path: str) -> tuple[int, dict]:
    status, body = app.handle(path)
    return status, json.loads(body)


def test_cursor_roundtrip_and_opacity():
    cursor = _encode_cursor("restaurants", "phone", 150)
    assert "restaurants" not in cursor  # base64url: opaque to clients
    assert _decode_cursor(cursor) == ("restaurants", "phone", 150)


@pytest.mark.parametrize(
    "cursor",
    [
        "not-base64!!!",
        "aGVsbG8",  # valid base64, not JSON
        _encode_cursor("restaurants", "phone", -1),  # negative offset
    ],
)
def test_malformed_cursors_400(app, cursor):
    status, payload = get(app, f"{BASE}?limit=10&cursor={cursor}")
    assert status == 400
    assert "cursor" in payload["error"]


def test_legacy_shape_without_limit_or_cursor(app, index):
    """The PR 4 contract is untouched when no paging params appear."""
    status, payload = get(app, BASE)
    assert status == 200
    (match,) = payload["matches"]
    assert match["n_entities"] == 191
    assert match["truncated"] is False
    assert len(match["entities"]) == 191
    assert "next_cursor" not in payload
    assert "offset" not in match


def test_pages_concatenate_to_the_full_listing(app):
    """Walking cursors with any limit reproduces the listing exactly."""
    __, full = get(app, BASE)
    (full_match,) = full["matches"]

    collected: list[str] = []
    offsets: list[int] = []
    pages = 0
    cursor = None
    while True:
        path = f"{BASE}?limit=50" + (f"&cursor={cursor}" if cursor else "")
        status, payload = get(app, path)
        assert status == 200
        assert payload["limit"] == 50
        (match,) = payload["matches"]
        assert match["domain"] == "restaurants"
        assert match["n_entities"] == 191
        offsets.append(match["offset"])
        collected.extend(match["entities"])
        pages += 1
        cursor = payload["next_cursor"]
        if cursor is None:
            break
    assert pages == 4  # 50 + 50 + 50 + 41
    assert offsets == [0, 50, 100, 150]
    assert collected == full_match["entities"]


def test_page_boundary_exactly_at_listing_end(app):
    """A page ending on the last entity yields no next cursor."""
    cursor = _encode_cursor("restaurants", "phone", 141)
    status, payload = get(app, f"{BASE}?limit=50&cursor={cursor}")
    assert status == 200
    (match,) = payload["matches"]
    assert len(match["entities"]) == 50
    assert payload["next_cursor"] is None


def test_limit_is_capped_by_settings(index):
    app = ServeApp(
        index,
        ServeSettings(max_site_entities=30, response_cache_entries=0),
    )
    try:
        status, payload = get(app, f"{BASE}?limit=1000")
        assert status == 200
        assert payload["limit"] == 30
        (match,) = payload["matches"]
        assert len(match["entities"]) == 30
    finally:
        app.close()


def test_limit_must_be_positive(app):
    status, payload = get(app, f"{BASE}?limit=0")
    assert status == 400
    assert "limit" in payload["error"]


def test_cursor_for_foreign_pair_400(app):
    cursor = _encode_cursor("books", "isbn", 0)
    status, payload = get(app, f"{BASE}?limit=10&cursor={cursor}")
    assert status == 400
    assert "cursor names no current match" in payload["error"]


def test_cursor_offset_beyond_listing_400(app):
    cursor = _encode_cursor("restaurants", "phone", 100_000)
    status, payload = get(app, f"{BASE}?limit=10&cursor={cursor}")
    assert status == 400
    assert "beyond" in payload["error"]


def test_paged_responses_are_deterministic_bytes(app):
    path = f"{BASE}?limit=25"
    first = app.handle(path)
    second = app.handle(path)
    assert first == second


def test_pagination_composes_with_response_cache(index):
    cached = ServeApp(index, ServeSettings(response_cache_entries=64))
    plain = ServeApp(index, ServeSettings(response_cache_entries=0))
    try:
        path = f"{BASE}?limit=40"
        baseline = plain.handle(path)
        assert cached.handle(path) == baseline
        assert cached.handle(path) == baseline  # served from the rcache
        assert cached.rcache.stats()["hits"] >= 1
    finally:
        cached.close()
        plain.close()
