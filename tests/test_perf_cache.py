"""Unit tests for repro.perf: fingerprints and the artifact cache."""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

from repro.core.incidence import BipartiteIncidence
from repro.perf.cache import (
    ENV_CACHE_DIR,
    ArtifactCache,
    CacheStats,
    active_cache,
    configure_cache,
    resolve_cache_dir,
)
from repro.perf.fingerprint import canonical_payload, fingerprint


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class _Params:
    n: int
    rate: float


def test_fingerprint_is_stable_and_hex():
    key = fingerprint("incidence", seed=3, profile=_Params(n=10, rate=0.5))
    assert key == fingerprint("incidence", seed=3, profile=_Params(n=10, rate=0.5))
    assert len(key) == 64
    assert set(key) <= set("0123456789abcdef")


def test_fingerprint_changes_with_any_component():
    base = fingerprint("incidence", seed=3, n=10)
    assert fingerprint("incidence", seed=4, n=10) != base
    assert fingerprint("incidence", seed=3, n=11) != base
    assert fingerprint("traffic", seed=3, n=10) != base  # kind is part of the key


def test_fingerprint_kwarg_order_is_irrelevant():
    assert fingerprint("k", a=1, b=2) == fingerprint("k", b=2, a=1)


def test_canonical_payload_normalizes_numpy_and_dataclasses():
    payload = canonical_payload(
        {"arr": np.array([1, 2]), "i": np.int64(3), "f": np.float64(0.5),
         "params": _Params(n=1, rate=2.0)}
    )
    assert payload["arr"] == [1, 2]
    assert payload["i"] == 3 and isinstance(payload["i"], int)
    assert payload["f"] == 0.5 and isinstance(payload["f"], float)
    assert payload["params"]["__dataclass__"] == "_Params"


def test_canonical_payload_rejects_uncanonicalizable_values():
    with pytest.raises(TypeError):
        canonical_payload(object())


# ---------------------------------------------------------------------------
# CacheStats
# ---------------------------------------------------------------------------


def test_cache_stats_hit_rate_and_merge():
    stats = CacheStats()
    assert stats.hit_rate == 0.0  # no lookups yet
    stats.hits, stats.misses = 3, 1
    assert stats.hit_rate == pytest.approx(0.75)
    other = CacheStats(hits=1, misses=1, puts=2, evictions=1)
    stats.merge(other)
    assert (stats.hits, stats.misses, stats.puts, stats.evictions) == (4, 2, 2, 1)
    assert stats.as_dict()["hit_rate"] == pytest.approx(4 / 6, abs=1e-4)


# ---------------------------------------------------------------------------
# ArtifactCache round-trips
# ---------------------------------------------------------------------------


def test_incidence_round_trip_is_exact(tmp_path, tiny_incidence):
    cache = ArtifactCache(tmp_path)
    key = fingerprint("incidence", fixture="tiny")
    assert cache.get_incidence(key) is None
    cache.put_incidence(key, tiny_incidence)
    loaded = cache.get_incidence(key)
    assert loaded is not None
    assert loaded.site_hosts == tiny_incidence.site_hosts
    np.testing.assert_array_equal(loaded.site_ptr, tiny_incidence.site_ptr)
    np.testing.assert_array_equal(loaded.entity_idx, tiny_incidence.entity_idx)
    assert cache.stats.as_dict() == {
        "hits": 1, "misses": 1, "puts": 1, "evictions": 0,
        "quarantined": 0, "hit_rate": 0.5,
    }


def test_array_bundle_round_trip_is_exact(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = fingerprint("traffic", site="x")
    arrays = {
        "a": np.arange(5, dtype=np.int64),
        "b": np.linspace(0.0, 1.0, 7),
    }
    cache.put_arrays(key, arrays)
    loaded = cache.get_arrays(key)
    assert set(loaded) == {"a", "b"}
    for name in arrays:
        np.testing.assert_array_equal(loaded[name], arrays[name])
        assert loaded[name].dtype == arrays[name].dtype


def test_records_round_trip(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = fingerprint("table2-row", domain="d")
    rows = [{"domain": "d", "diameter": 4, "pct": 99.8}]
    cache.put_records(key, rows)
    assert cache.get_records(key) == rows


def test_distinct_kinds_never_collide(tmp_path, tiny_incidence):
    cache = ArtifactCache(tmp_path)
    inc_key = fingerprint("incidence", seed=0)
    arr_key = fingerprint("traffic", seed=0)
    assert inc_key != arr_key
    cache.put_incidence(inc_key, tiny_incidence)
    cache.put_arrays(arr_key, {"x": np.ones(3)})
    assert cache.get_incidence(inc_key) is not None
    assert cache.get_arrays(arr_key) is not None


def test_corrupt_entry_is_dropped_and_counted_as_miss(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = fingerprint("traffic", site="torn")
    cache.put_arrays(key, {"x": np.ones(3)})
    (entry,) = cache.entries()
    entry.write_bytes(b"not an npz")
    assert cache.get_arrays(key) is None
    assert cache.stats.hits == 0
    assert cache.stats.misses == 1
    assert cache.entries() == []  # the torn blob was removed


def test_entries_excludes_temp_files(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.put_records(fingerprint("k", i=1), [{"a": 1}])
    (entry,) = cache.entries()
    litter = entry.with_name(f"{entry.stem}.tmp999{entry.suffix}")
    litter.write_text("partial")
    assert cache.entries() == [entry]


# ---------------------------------------------------------------------------
# Integrity: digests, quarantine, and the decode swallow sites
# ---------------------------------------------------------------------------
#
# Every corrupt-read path must end in the quarantine directory with the
# `quarantined` counter bumped — never a silent miss that regenerates
# over the evidence.


def _resign(entry):
    """Rewrite an entry's digest sidecar to match its (mangled) bytes.

    Makes the digest check pass so the *decoder* swallow sites are the
    ones exercised, not the verification layer.
    """
    import hashlib

    sidecar = entry.with_name(entry.name + ".sha256")
    sidecar.write_text(hashlib.sha256(entry.read_bytes()).hexdigest() + "\n")


def _assert_quarantined(cache, n=1):
    assert cache.stats.quarantined == n
    assert len(cache.quarantined_entries()) == n
    assert cache.entries() == []  # gone from the readable cache...
    assert cache.stats.hits == 0  # ...and never reported as a hit


def test_digest_mismatch_is_quarantined_not_silently_missed(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = fingerprint("traffic", site="bitrot")
    cache.put_arrays(key, {"x": np.ones(3)})
    (entry,) = cache.entries()
    data = bytearray(entry.read_bytes())
    data[len(data) // 2] ^= 0xFF  # one flipped bit, stale sidecar
    entry.write_bytes(bytes(data))
    assert cache.get_arrays(key) is None
    assert cache.stats.misses == 1
    _assert_quarantined(cache)


def test_missing_sidecar_is_quarantined(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = fingerprint("traffic", site="unsigned")
    cache.put_arrays(key, {"x": np.ones(3)})
    (entry,) = cache.entries()
    entry.with_name(entry.name + ".sha256").unlink()
    assert cache.get_arrays(key) is None
    _assert_quarantined(cache)


def test_truncated_npz_hits_quarantine(tmp_path, tiny_incidence):
    cache = ArtifactCache(tmp_path)
    key = fingerprint("incidence", fixture="torn")
    cache.put_incidence(key, tiny_incidence)
    (entry,) = cache.entries()
    entry.write_bytes(entry.read_bytes()[:40])  # torn mid-write
    _resign(entry)  # digest passes; np.load is what fails
    assert cache.get_incidence(key) is None
    assert cache.stats.misses == 1
    _assert_quarantined(cache)


def test_mangled_json_lines_hit_quarantine(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = fingerprint("table2-row", domain="mangled")
    cache.put_records(key, [{"domain": "d", "diameter": 4}])
    (entry,) = cache.entries()
    entry.write_text('{"domain": "d", "diam')  # not valid JSON lines
    _resign(entry)
    assert cache.get_records(key) is None
    _assert_quarantined(cache)


def test_missing_key_blob_hits_quarantine(tmp_path, tiny_incidence):
    cache = ArtifactCache(tmp_path)
    key = fingerprint("incidence", fixture="wrong-keys")
    cache.put_incidence(key, tiny_incidence)
    (entry,) = cache.entries()
    np.savez(entry.open("wb"), unrelated=np.ones(2))  # valid npz, wrong keys
    _resign(entry)
    assert cache.get_incidence(key) is None
    _assert_quarantined(cache)


def test_quarantine_preserves_the_corrupt_bytes(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = fingerprint("table2-row", domain="evidence")
    cache.put_records(key, [{"a": 1}])
    (entry,) = cache.entries()
    entry.write_text("forensic evidence")
    assert cache.get_records(key) is None
    (quarantined,) = cache.quarantined_entries()
    assert quarantined.read_text() == "forensic evidence"


def test_regeneration_after_quarantine_round_trips(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = fingerprint("table2-row", domain="healed")
    cache.put_records(key, [{"a": 1}])
    (entry,) = cache.entries()
    entry.write_text("junk")
    assert cache.get_records(key) is None  # quarantined
    cache.put_records(key, [{"a": 1}])  # regenerated by the caller
    assert cache.get_records(key) == [{"a": 1}]
    assert cache.stats.quarantined == 1


# ---------------------------------------------------------------------------
# LRU eviction
# ---------------------------------------------------------------------------


def _put_blob(cache: ArtifactCache, tag: str, mtime: int) -> str:
    key = fingerprint("blob", tag=tag)
    cache.put_records(key, [{"tag": tag, "pad": "x" * 200}])
    path = cache._path(key, ".jsonl")
    os.utime(path, ns=(mtime, mtime))  # pin read-recency for the test
    return key


def test_eviction_removes_least_recently_read_first(tmp_path):
    cache = ArtifactCache(tmp_path, max_bytes=10_000_000)  # no eviction yet
    old = _put_blob(cache, "old", mtime=1_000)
    new = _put_blob(cache, "new", mtime=2_000)
    entry_size = cache.total_bytes() // 2
    # Budget fits two entries; the third put must evict exactly the oldest.
    cache.max_bytes = int(entry_size * 2.5)
    third = _put_blob(cache, "third", mtime=3_000)
    assert cache.stats.evictions == 1
    assert cache.get_records(old) is None
    assert cache.get_records(new) is not None
    assert cache.get_records(third) is not None


def test_fresh_put_is_never_evicted_by_itself(tmp_path):
    cache = ArtifactCache(tmp_path, max_bytes=1)  # nothing fits
    key = fingerprint("blob", tag="only")
    cache.put_records(key, [{"pad": "x" * 500}])
    assert cache.get_records(key) is not None  # survives its own put
    cache.put_records(fingerprint("blob", tag="next"), [{"pad": "y" * 500}])
    assert cache.get_records(key) is None  # evicted by the *next* put


def test_read_refreshes_recency(tmp_path):
    cache = ArtifactCache(tmp_path, max_bytes=10_000_000)
    old = _put_blob(cache, "old", mtime=1_000)
    new = _put_blob(cache, "new", mtime=2_000)
    assert cache.get_records(old) is not None  # refresh: now most recent
    cache.max_bytes = int(cache.total_bytes() // 2 * 2.5)
    _put_blob(cache, "third", mtime=3_000)
    assert cache.get_records(old) is not None
    assert cache.get_records(new) is None  # "new" became the LRU entry


def test_clear_removes_everything(tmp_path):
    cache = ArtifactCache(tmp_path)
    _put_blob(cache, "a", mtime=1)
    _put_blob(cache, "b", mtime=2)
    assert cache.clear() == 2
    assert cache.entries() == []
    assert cache.total_bytes() == 0


# ---------------------------------------------------------------------------
# Configuration plumbing
# ---------------------------------------------------------------------------


def test_resolve_cache_dir_precedence(tmp_path, monkeypatch):
    explicit = tmp_path / "explicit"
    monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "env"))
    assert resolve_cache_dir(explicit) == explicit
    assert resolve_cache_dir(None) == tmp_path / "env"
    monkeypatch.delenv(ENV_CACHE_DIR)
    assert resolve_cache_dir(None) == (
        resolve_cache_dir(None).home() / ".cache" / "repro-artifacts"
    )


def test_configure_cache_installs_and_restores(tmp_path):
    previous = active_cache()
    cache = ArtifactCache(tmp_path)
    try:
        assert configure_cache(cache) is previous
        assert active_cache() is cache
    finally:
        configure_cache(previous)
    assert active_cache() is previous
