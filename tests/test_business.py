"""Tests for the business-listing generator."""

from __future__ import annotations

import pytest

from repro.entities.business import BusinessGenerator, generate_listings
from repro.entities.ids import canonical_url, is_valid_nanp_phone


def test_deterministic_for_equal_seeds():
    a = BusinessGenerator("restaurants", seed=5).generate(50)
    b = BusinessGenerator("restaurants", seed=5).generate(50)
    assert a == b


def test_different_seeds_differ():
    a = BusinessGenerator("restaurants", seed=5).generate(50)
    b = BusinessGenerator("restaurants", seed=6).generate(50)
    assert a != b


def test_phones_are_unique_and_valid():
    listings = generate_listings("banks", 500, seed=1)
    phones = [entry.phone for entry in listings]
    assert len(set(phones)) == len(phones)
    assert all(is_valid_nanp_phone(p) for p in phones)


def test_homepages_unique_and_canonical():
    listings = generate_listings("hotels", 400, seed=2, homepage_fraction=1.0)
    homepages = [entry.homepage for entry in listings]
    assert all(h is not None for h in homepages)
    assert len(set(homepages)) == len(homepages)
    assert all(canonical_url(h) == h for h in homepages)


def test_homepage_fraction_zero():
    listings = generate_listings("schools", 100, seed=3, homepage_fraction=0.0)
    assert all(entry.homepage is None for entry in listings)


def test_homepage_fraction_respected_approximately():
    listings = generate_listings("retail", 1000, seed=4, homepage_fraction=0.5)
    with_homepage = sum(1 for entry in listings if entry.homepage)
    assert 400 <= with_homepage <= 600


def test_entity_ids_unique_and_prefixed():
    listings = generate_listings("automotive", 100, seed=5)
    ids = [entry.entity_id for entry in listings]
    assert len(set(ids)) == len(ids)
    assert all(i.startswith("automotive:") for i in ids)


def test_address_renders():
    listing = generate_listings("home", 1, seed=6)[0]
    assert listing.city in listing.address
    assert listing.zip_code in listing.address


def test_books_domain_rejected():
    with pytest.raises(ValueError, match="not a local-business domain"):
        BusinessGenerator("books")


def test_bad_homepage_fraction_rejected():
    with pytest.raises(ValueError):
        BusinessGenerator("banks", homepage_fraction=1.5)


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        BusinessGenerator("banks").generate(-1)


def test_stream_matches_generate():
    gen_a = BusinessGenerator("libraries", seed=9)
    gen_b = BusinessGenerator("libraries", seed=9)
    assert list(gen_a.stream(20)) == gen_b.generate(20)
