"""Tests for the experiment configuration."""

from __future__ import annotations

import pytest

from repro.pipeline.config import ExperimentConfig


def test_defaults_valid():
    config = ExperimentConfig()
    assert config.scale == "small"
    assert config.ks == tuple(range(1, 11))
    assert config.scale_preset.n_entities == 2000


def test_unknown_scale_rejected():
    with pytest.raises(ValueError, match="unknown scale"):
        ExperimentConfig(scale="galactic")


def test_bad_ks_rejected():
    with pytest.raises(ValueError):
        ExperimentConfig(ks=())
    with pytest.raises(ValueError):
        ExperimentConfig(ks=(0, 1))


def test_bad_traffic_sizes_rejected():
    with pytest.raises(ValueError):
        ExperimentConfig(traffic_entities=0)
    with pytest.raises(ValueError):
        ExperimentConfig(traffic_events=0)


def test_scaled_down():
    config = ExperimentConfig(traffic_entities=1000, traffic_events=10000)
    smaller = config.scaled_down(10)
    assert smaller.traffic_entities == 100
    assert smaller.traffic_events == 1000
    assert smaller.scale == config.scale
    with pytest.raises(ValueError):
        config.scaled_down(0)
