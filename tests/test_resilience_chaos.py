"""Chaos suite: every fault mode converges to byte-identical artifacts.

The determinism contract says execution settings change how fast a run
is, never what bytes it writes.  These tests extend that to faults: a
pipeline run under injected task errors, worker kills, hangs, or cache
corruption must — after retries and/or a resume — produce artifacts
byte-identical to an undisturbed serial run, and every failure must be
visible (structured failure report, quarantine counter), never silent.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

import pytest

from repro.perf import (
    ArtifactCache,
    ExperimentTask,
    configure_cache,
    execute_tasks,
)
from repro.pipeline.config import ExecutionSettings, ExperimentConfig
from repro.pipeline.runall import run_everything_with_report
from repro.resilience import ENV_FAULTS, RetryPolicy, clear_plan_cache

# Small enough that a full pipeline run is ~a second; the chaos suite
# runs several of them.
CONFIG = ExperimentConfig(scale="tiny", seed=0).scaled_down(400)


def _digests(directory: Path) -> dict[str, str]:
    return {
        path.name: hashlib.sha256(path.read_bytes()).hexdigest()
        for path in sorted(directory.iterdir())
        if path.is_file()
    }


@pytest.fixture(autouse=True)
def fast_backoff(monkeypatch):
    monkeypatch.setattr(RetryPolicy, "sleep", lambda self, seconds: None)


@pytest.fixture
def faults(monkeypatch):
    def _arm(spec: str) -> None:
        if spec:
            monkeypatch.setenv(ENV_FAULTS, spec)
        else:
            monkeypatch.delenv(ENV_FAULTS, raising=False)
        clear_plan_cache()

    _arm("")  # make sure nothing leaks in
    yield _arm
    _arm("")


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """Digests of an undisturbed serial, uncached run."""
    previous = os.environ.pop(ENV_FAULTS, None)
    clear_plan_cache()
    out = tmp_path_factory.mktemp("baseline")
    try:
        run_everything_with_report(out, CONFIG, verbose=False)
    finally:
        if previous is not None:
            os.environ[ENV_FAULTS] = previous
        clear_plan_cache()
    return _digests(out)


# ---------------------------------------------------------------------------
# Fault modes converge without resume
# ---------------------------------------------------------------------------


def test_task_error_fault_retries_to_byte_identical(tmp_path, faults, baseline):
    faults("op=error,task=figure3,times=2; op=error,task=table2,times=1")
    out = tmp_path / "out"
    settings = ExecutionSettings(retries=2)
    __, report = run_everything_with_report(
        out, CONFIG, verbose=False, settings=settings
    )
    assert report.ok
    assert _digests(out) == baseline


def test_inline_kill_fault_converges(tmp_path, faults, baseline):
    faults("op=kill,task=table1,times=1")
    out = tmp_path / "out"
    __, report = run_everything_with_report(
        out, CONFIG, verbose=False, settings=ExecutionSettings(retries=1)
    )
    assert report.ok
    assert _digests(out) == baseline


def test_worker_kill_rebuilds_pool_and_converges(tmp_path, faults, baseline):
    faults("op=kill,task=warm:traffic:*,times=1")
    out = tmp_path / "out"
    settings = ExecutionSettings(
        workers=2,
        use_cache=True,
        cache_dir=str(tmp_path / "cache"),
        retries=2,
    )
    __, report = run_everything_with_report(
        out, CONFIG, verbose=False, settings=settings
    )
    assert report.ok
    assert _digests(out) == baseline
    if report.workers > 1:  # single-CPU runners clamp to inline mode
        assert report.pool_rebuilds >= 1


def test_hang_fault_times_out_and_converges(tmp_path, faults, baseline):
    faults("op=hang,task=table2,times=1,seconds=2")
    out = tmp_path / "out"
    settings = ExecutionSettings(workers=2, task_timeout=0.3, retries=1)
    __, report = run_everything_with_report(
        out, CONFIG, verbose=False, settings=settings
    )
    assert report.ok
    assert _digests(out) == baseline


def test_cache_corruption_quarantines_and_converges(tmp_path, faults, baseline):
    faults("op=corrupt,key=*")
    out = tmp_path / "out"
    cache_dir = tmp_path / "cache"
    settings = ExecutionSettings(use_cache=True, cache_dir=str(cache_dir))
    __, report = run_everything_with_report(
        out, CONFIG, verbose=False, settings=settings
    )
    assert report.ok
    assert _digests(out) == baseline
    # Corruption is loud, never a silent miss: quarantined blobs are
    # counted and preserved on disk.
    assert report.cache.quarantined > 0
    assert any((cache_dir / "quarantine").iterdir())
    assert report.cache.hits == 0  # nothing corrupt was ever served


# ---------------------------------------------------------------------------
# Partial failure + resume
# ---------------------------------------------------------------------------


def test_partial_failure_then_resume_converges(tmp_path, faults, baseline):
    out = tmp_path / "out"
    common = dict(
        use_cache=True,
        cache_dir=str(tmp_path / "cache"),
        keep_journal=True,
        journal_dir=str(tmp_path / "journals"),
        failure_mode="continue",
    )

    faults("op=error,task=warm:traffic:*,times=99")
    __, report = run_everything_with_report(
        out, CONFIG, verbose=False, settings=ExecutionSettings(retries=1, **common)
    )
    assert not report.ok
    assert {f["name"] for f in report.failures} == {
        "warm:traffic:imdb", "warm:traffic:amazon", "warm:traffic:yelp"
    }
    assert {s["name"] for s in report.skipped} == {
        "figure6", "figure7", "figure8"
    }
    assert all(f["attempts"] == 2 for f in report.failures)
    assert all("InjectedTaskError" in f["traceback"] for f in report.failures)
    assert report.run_id  # the handle --resume takes

    faults("")  # outage over
    written, resumed = run_everything_with_report(
        out,
        CONFIG,
        verbose=False,
        settings=ExecutionSettings(resume=True, **common),
    )
    assert resumed.ok
    assert resumed.resumed
    assert resumed.run_id == report.run_id
    # Only the failed tasks and their dependents re-ran.
    rerun = {timing.name for timing in resumed.timings}
    assert rerun == {
        "warm:traffic:imdb", "warm:traffic:amazon", "warm:traffic:yelp",
        "figure6", "figure7", "figure8",
    }
    assert _digests(out) == baseline
    # The returned artifact list covers the whole run, journaled tasks
    # included, in canonical order.
    assert "table1" in written and "figure6_search" in written


def test_resume_with_nothing_missing_is_a_no_op(tmp_path, faults, baseline):
    out = tmp_path / "out"
    common = dict(
        keep_journal=True, journal_dir=str(tmp_path / "journals")
    )
    run_everything_with_report(
        out, CONFIG, verbose=False, settings=ExecutionSettings(**common)
    )
    written, report = run_everything_with_report(
        out,
        CONFIG,
        verbose=False,
        settings=ExecutionSettings(resume=True, **common),
    )
    assert report.ok and report.resumed
    assert report.timings == []  # nothing re-ran
    assert _digests(out) == baseline
    assert "table1" in written


def _stalled_cache_roundtrip(payload):
    """Publish then read back one records blob through a fresh cache.

    Module-level so forked pool workers can unpickle it by reference.
    With a ``stall`` fault armed, both the publish and the read sleep —
    this is the cache-touching task the executor's per-attempt timeout
    must cut short.
    """
    cache = ArtifactCache(directory=Path(payload["cache_dir"]))
    configure_cache(cache)
    cache.put_records(payload["key"], payload["records"])
    return cache.get_records(payload["key"])


def _io_free_value(payload):
    """A sibling task that never touches the cache."""
    return payload


def test_cache_stall_trips_attempt_timeout_then_recovers(tmp_path, faults):
    """A wedged cache filesystem must cost timeouts, never a hung run.

    ``op=stall`` is stateless — every matching cache read or publish
    sleeps in whichever process performs the I/O.  The executor's
    per-attempt timeout is the defence: with the stall armed, the
    cache-touching task blows its budget and fails loudly (while an
    I/O-free sibling completes untouched); with the stall cleared, the
    same task graph converges to the exact faultless value.
    """
    records = [{"rank": index, "score": index * 0.5} for index in range(4)]
    payload = {
        "cache_dir": str(tmp_path / "cache"),
        "key": "deadbeef" * 8,
        "records": records,
    }
    tasks = [
        ExperimentTask("stalled", _stalled_cache_roundtrip, payload),
        ExperimentTask("untouched", _io_free_value, 41),
    ]
    # One attempt, tight deadline: the 3 s stall must trip the 0.5 s
    # timeout rather than run to completion (and an orphaned worker
    # sleeps out harmlessly in the background after pool teardown).
    policy = RetryPolicy(max_attempts=1, timeout_seconds=0.5, seed=0)

    faults("op=stall,key=*,seconds=3")
    result = execute_tasks(
        tasks, workers=2, policy=policy, raise_on_failure=False
    )
    assert "stalled" in result.failures  # the stall was felt, loudly
    failure = result.failures["stalled"]
    assert failure.error_type == "TimeoutError"
    assert "timeout" in failure.message.lower()
    assert result.outcomes["untouched"].value == 41
    # Tripped deadline, not a wedged run: well under one full stall nap.
    assert result.total_seconds < 2.5
    assert failure.attempts == 1  # charged exactly the one timed-out try

    faults("")  # filesystem unwedged
    clean = execute_tasks(
        tasks, workers=2, policy=policy, raise_on_failure=False
    )
    assert clean.ok
    assert clean.outcomes["stalled"].value == records
    assert clean.outcomes["untouched"].value == 41
