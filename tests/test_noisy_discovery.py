"""Tests for budgeted/lossy bootstrapping and the focused crawler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.discovery.bootstrap import BootstrapExpansion
from repro.discovery.crawler import FocusedCrawler
from repro.discovery.noisy import NoisyExpansion
from repro.webgen.profiles import get_profile


@pytest.fixture(scope="module")
def incidence():
    return get_profile("restaurants", "phone").generate("tiny", seed=9)


class TestNoisyExpansion:
    def test_perfect_settings_match_perfect_expansion(self, incidence):
        noisy = NoisyExpansion(
            incidence, retrieval_budget=None, extraction_recall=1.0
        )
        perfect = BootstrapExpansion(incidence)
        seed = [0, 1]
        noisy_trace = noisy.run(seed)
        perfect_trace = perfect.run(seed)
        assert set(noisy_trace.entities.tolist()) == set(
            perfect_trace.entities.tolist()
        )

    def test_budget_limits_coverage_or_slows_it(self, incidence):
        tight = NoisyExpansion(incidence, retrieval_budget=1, seed=1).run([0])
        loose = NoisyExpansion(incidence, retrieval_budget=None, seed=1).run([0])
        assert len(tight.entities) <= len(loose.entities)

    def test_lossy_extraction_reduces_coverage(self, incidence):
        lossy = NoisyExpansion(
            incidence, retrieval_budget=None, extraction_recall=0.3, seed=2
        ).run([0], max_iterations=3)
        perfect = NoisyExpansion(
            incidence, retrieval_budget=None, extraction_recall=1.0, seed=2
        ).run([0], max_iterations=3)
        assert len(lossy.entities) <= len(perfect.entities)

    def test_counts_monotone_and_queries_positive(self, incidence):
        trace = NoisyExpansion(incidence, seed=3).run([0, 5])
        assert all(
            a <= b for a, b in zip(trace.entity_counts, trace.entity_counts[1:])
        )
        assert trace.queries_issued >= len(trace.entities) - 5

    def test_validation(self, incidence):
        with pytest.raises(ValueError):
            NoisyExpansion(incidence, retrieval_budget=0)
        with pytest.raises(ValueError):
            NoisyExpansion(incidence, extraction_recall=0.0)
        expansion = NoisyExpansion(incidence)
        with pytest.raises(ValueError):
            expansion.run([])
        with pytest.raises(ValueError):
            expansion.run([10**9])

    def test_entity_fraction(self, incidence):
        trace = NoisyExpansion(incidence, seed=4).run([0])
        assert 0.0 < trace.entity_fraction(incidence.n_entities) <= 1.0
        with pytest.raises(ValueError):
            trace.entity_fraction(0)

    def test_budgeted_run_still_reaches_most_of_component(self, incidence):
        """Realistic budgets cost iterations, not (much) coverage —
        the connectivity conclusion survives imperfection."""
        trace = NoisyExpansion(
            incidence, retrieval_budget=5, extraction_recall=0.9, seed=5
        ).run([0, 1, 2], max_iterations=20)
        assert trace.entity_fraction(incidence.n_entities) > 0.8


class TestFocusedCrawler:
    def test_site_cost_model(self, incidence):
        crawler = FocusedCrawler(incidence, entities_per_page=10, overhead_pages=2)
        sizes = incidence.site_sizes()
        biggest = int(incidence.sites_by_size()[0])
        assert crawler.site_cost(biggest) == -(-int(sizes[biggest]) // 10) + 2

    def test_budget_respected(self, incidence):
        crawler = FocusedCrawler(incidence)
        result = crawler.crawl(page_budget=100)
        assert result.total_pages <= 100
        assert np.all(np.diff(result.pages_fetched) > 0)
        assert np.all(np.diff(result.coverage) >= 0)

    def test_zero_budget(self, incidence):
        result = FocusedCrawler(incidence).crawl(page_budget=0)
        assert result.sites_crawled == 0
        assert result.coverage_at_pages(0) == 0.0

    def test_greedy_oracle_dominates_at_budget(self, incidence):
        crawler = FocusedCrawler(incidence)
        results = crawler.compare_policies(page_budget=300, rng=1)
        greedy = results["greedy_oracle"].coverage_at_pages(300)
        largest = results["largest_first"].coverage_at_pages(300)
        random = results["random"].coverage_at_pages(300)
        assert greedy >= largest - 1e-9
        assert largest > random

    def test_coverage_at_pages_interpolation(self, incidence):
        result = FocusedCrawler(incidence).crawl(page_budget=200)
        mid = int(result.pages_fetched[len(result.pages_fetched) // 2])
        assert 0.0 < result.coverage_at_pages(mid) <= 1.0
        with pytest.raises(ValueError):
            result.coverage_at_pages(-1)

    def test_validation(self, incidence):
        with pytest.raises(ValueError):
            FocusedCrawler(incidence, entities_per_page=0)
        with pytest.raises(ValueError):
            FocusedCrawler(incidence, overhead_pages=-1)
        crawler = FocusedCrawler(incidence)
        with pytest.raises(ValueError):
            crawler.crawl(page_budget=-1)
        with pytest.raises(ValueError):
            crawler.crawl(page_budget=10, policy="teleport")
