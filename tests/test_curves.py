"""Tests for curve comparison utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.curves import area_between, crossovers, max_gap, step_interpolate


class TestStepInterpolate:
    def test_between_checkpoints_holds_last_value(self):
        xs = np.array([1.0, 10.0, 100.0])
        ys = np.array([0.2, 0.5, 0.9])
        assert step_interpolate(np.array([5.0]), xs, ys)[0] == 0.2
        assert step_interpolate(np.array([10.0]), xs, ys)[0] == 0.5

    def test_left_of_support_is_zero(self):
        xs = np.array([10.0])
        ys = np.array([0.7])
        assert step_interpolate(np.array([1.0]), xs, ys)[0] == 0.0

    def test_right_of_support_holds_final(self):
        xs = np.array([1.0, 2.0])
        ys = np.array([0.1, 0.6])
        assert step_interpolate(np.array([99.0]), xs, ys)[0] == 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            step_interpolate(np.array([1.0]), np.array([]), np.array([]))
        with pytest.raises(ValueError):
            step_interpolate(
                np.array([1.0]), np.array([2.0, 1.0]), np.array([0.1, 0.2])
            )


class TestMaxGap:
    def test_identical_curves(self):
        xs = np.array([1.0, 10.0])
        ys = np.array([0.3, 0.8])
        assert max_gap(xs, ys, xs, ys) == 0.0

    def test_known_gap(self):
        xs = np.array([1.0, 10.0])
        a = np.array([0.5, 0.9])
        b = np.array([0.3, 0.8])
        assert max_gap(xs, a, xs, b) == pytest.approx(0.2)

    def test_mismatched_supports(self):
        gap = max_gap(
            np.array([1.0, 100.0]),
            np.array([0.5, 1.0]),
            np.array([10.0]),
            np.array([0.5]),
        )
        # at x=1: a=0.5, b=0 -> gap 0.5
        assert gap == pytest.approx(0.5)


class TestAreaBetween:
    def test_sign_of_dominance(self):
        xs = np.array([1.0, 10.0])
        high = np.array([0.9, 1.0])
        low = np.array([0.1, 0.2])
        assert area_between(xs, high, xs, low) > 0
        assert area_between(xs, low, xs, high) < 0

    def test_log_x_weighting(self):
        xs = np.array([1.0, 10.0, 100.0])
        a = np.array([1.0, 1.0, 1.0])
        b = np.array([0.0, 0.0, 0.0])
        # two decades of constant gap 1 -> area 2 in log10 space
        assert area_between(xs, a, xs, b, log_x=True) == pytest.approx(2.0)

    def test_log_x_requires_positive(self):
        xs = np.array([0.0, 1.0])
        ys = np.array([0.1, 0.2])
        with pytest.raises(ValueError):
            area_between(xs, ys, xs, ys, log_x=True)


class TestCrossovers:
    def test_single_crossover(self):
        xs = np.array([1.0, 2.0, 3.0, 4.0])
        a = np.array([0.1, 0.2, 0.8, 0.9])
        b = np.array([0.5, 0.5, 0.5, 0.5])
        points = crossovers(xs, a, xs, b)
        assert points.tolist() == [3.0]

    def test_no_crossover(self):
        xs = np.array([1.0, 2.0])
        assert crossovers(xs, np.array([0.9, 1.0]), xs, np.array([0.1, 0.2])).size == 0

    def test_equal_stretches_ignored(self):
        xs = np.array([1.0, 2.0, 3.0])
        a = np.array([0.1, 0.5, 0.9])
        b = np.array([0.2, 0.5, 0.3])
        points = crossovers(xs, a, xs, b)
        assert points.tolist() == [3.0]


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=60)
def test_property_gap_symmetry_and_bound(pairs):
    xs = np.arange(1.0, len(pairs) + 1)
    a = np.array([p[0] for p in pairs])
    b = np.array([p[1] for p in pairs])
    gap_ab = max_gap(xs, a, xs, b)
    gap_ba = max_gap(xs, b, xs, a)
    assert gap_ab == pytest.approx(gap_ba)
    assert 0.0 <= gap_ab <= 1.0
    assert gap_ab >= abs(a[-1] - b[-1]) - 1e-12
