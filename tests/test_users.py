"""Tests for the user-level tail analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traffic.demandmodel import get_site_profile
from repro.traffic.logs import TrafficLog, TrafficLogGenerator
from repro.traffic.users import user_tail_analysis


def synthetic_log(entity, cookie):
    entity = np.asarray(entity)
    return TrafficLog(
        site="yelp",
        source="browse",
        n_entities=int(entity.max()) + 1,
        entity=entity,
        cookie=np.asarray(cookie),
        month=np.zeros(len(entity), dtype=np.int64),
    )


def test_hand_built_log():
    # entities: 0 is head (3 visits), 1 and 2 are tail
    log = synthetic_log([0, 0, 0, 1, 2], [10, 11, 12, 10, 10])
    report = user_tail_analysis(log, tail_fraction=0.6, regular_threshold=0.5)
    # head = top 40% of 3 entities -> 1 entity (entity 0)
    assert report.tail_demand_share == pytest.approx(2 / 5)
    # cookie 10 touched tail twice (2/3 visits); 11 and 12 never
    assert report.users_touching_tail == pytest.approx(1 / 3)
    assert report.users_regular_tail == pytest.approx(1 / 3)
    assert report.n_users == 3


def test_validation():
    log = synthetic_log([0], [1])
    with pytest.raises(ValueError):
        user_tail_analysis(log, tail_fraction=0.0)
    with pytest.raises(ValueError):
        user_tail_analysis(log, regular_threshold=0.0)
    empty = TrafficLog(
        site="yelp",
        source="browse",
        n_entities=3,
        entity=np.empty(0, dtype=np.int64),
        cookie=np.empty(0, dtype=np.int64),
        month=np.empty(0, dtype=np.int64),
    )
    with pytest.raises(ValueError):
        user_tail_analysis(empty)


def test_paper_pattern_on_simulated_traffic():
    """The Goel et al. asymmetry: the tail is a small share of demand
    but a large share of *users* touch it."""
    generator = TrafficLogGenerator(
        get_site_profile("yelp"), n_entities=3000, n_cookies=2000, seed=9
    )
    log = generator.browse_log(60000)
    report = user_tail_analysis(log, tail_fraction=0.8, regular_threshold=0.2)
    assert report.tail_demand_share < 0.6
    assert report.users_touching_tail > report.tail_demand_share
    assert report.users_touching_tail > 0.5
    assert 0.0 <= report.users_regular_tail <= report.users_touching_tail


def test_sharper_site_lower_tail_exposure():
    """IMDb's concentrated demand leaves fewer tail-touching users."""
    results = {}
    for site in ("imdb", "yelp"):
        generator = TrafficLogGenerator(
            get_site_profile(site), n_entities=3000, n_cookies=2000, seed=10
        )
        log = generator.search_log(60000)
        results[site] = user_tail_analysis(log).tail_demand_share
    assert results["imdb"] < results["yelp"]
