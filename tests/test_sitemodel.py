"""Tests for the site-size power law and its calibration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.webgen.sitemodel import SiteSizeModel, calibrate_size_exponent


def test_sizes_shape_and_floor():
    model = SiteSizeModel(n_entities=1000, n_sites=200, head_coverage=0.5, exponent=1.0)
    sizes = model.sizes()
    assert len(sizes) == 200
    assert sizes[0] == 500  # head coverage
    assert np.all(np.diff(sizes) <= 0)  # non-increasing
    assert sizes.min() >= 1  # floor


def test_calibration_hits_target():
    target = 20.0
    model = SiteSizeModel.calibrated(
        n_entities=2000, n_sites=4000, head_coverage=0.6, target_edges_per_entity=target
    )
    assert model.edges_per_entity() == pytest.approx(target, rel=0.02)


def test_calibration_unreachable_target():
    with pytest.raises(ValueError, match="outside the reachable range"):
        calibrate_size_exponent(
            n_entities=1000,
            n_sites=10,
            head_coverage=0.1,
            target_edges_per_entity=500.0,
        )


def test_calibration_input_validation():
    with pytest.raises(ValueError):
        calibrate_size_exponent(0, 10, 0.5, 5.0)
    with pytest.raises(ValueError):
        calibrate_size_exponent(10, 10, 0.0, 5.0)
    with pytest.raises(ValueError):
        calibrate_size_exponent(10, 10, 1.5, 5.0)
    with pytest.raises(ValueError):
        calibrate_size_exponent(10, 10, 0.5, -1.0)


def test_higher_exponent_fewer_edges():
    low = SiteSizeModel(1000, 500, 0.5, 0.3).edges_per_entity()
    high = SiteSizeModel(1000, 500, 0.5, 2.0).edges_per_entity()
    assert low > high


@given(
    st.integers(min_value=100, max_value=5000),
    st.integers(min_value=50, max_value=2000),
    st.floats(min_value=0.1, max_value=0.9),
    st.floats(min_value=0.5, max_value=3.0),
)
@settings(max_examples=40, deadline=None)
def test_property_calibration_roundtrip(n_entities, n_sites, head, exponent):
    """Calibrating to a model's own edge count recovers a model with the
    same edge count (the exponent may differ where the floor saturates)."""
    reference = SiteSizeModel(n_entities, n_sites, head, exponent)
    target = reference.edges_per_entity()
    calibrated = SiteSizeModel.calibrated(n_entities, n_sites, head, target)
    assert calibrated.edges_per_entity() == pytest.approx(target, rel=0.05)
