"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


TINY = ["--scale", "tiny", "--traffic-entities", "2000",
        "--traffic-events", "20000", "--traffic-cookies", "4000"]


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Books" in out and "Restaurants" in out


def test_spread(capsys):
    assert main(["spread", "banks", "phone", *TINY]) == 0
    out = capsys.readouterr().out
    assert "banks phones" in out
    assert "sites needed for 90% coverage" in out


def test_spread_csv(tmp_path, capsys):
    assert main(["spread", "banks", "phone", "--csv", str(tmp_path), *TINY]) == 0
    assert (tmp_path / "spread_banks_phone.csv").exists()


def test_figure3(capsys):
    assert main(["figure", "3", *TINY]) == 0
    assert "books isbns" in capsys.readouterr().out


def test_figure5(capsys):
    assert main(["figure", "5", *TINY]) == 0
    assert "max greedy improvement" in capsys.readouterr().out


def test_figure8(capsys):
    assert main(["figure", "8", *TINY]) == 0
    out = capsys.readouterr().out
    assert "VA(n)/VA(0)" in out
    assert "imdb" in out and "yelp" in out


def test_figure_out_of_range(capsys):
    assert main(["figure", "12", *TINY]) == 2


def test_discover(capsys):
    assert main(["discover", *TINY]) == 0
    out = capsys.readouterr().out
    assert "perfect expansion" in out
    assert "budgeted expansion" in out


def test_crawl(capsys):
    assert main(["crawl", "--pages", "400", *TINY]) == 0
    out = capsys.readouterr().out
    assert "greedy_oracle" in out
    assert "largest_first" in out


def test_evolve(capsys):
    assert main(["evolve", "--epochs", "3", "--budget", "10", *TINY]) == 0
    out = capsys.readouterr().out
    assert "staleness" in out.lower()
    assert "largest_first" in out


def test_resolve(capsys):
    assert main(["resolve", "--entities", "80", "--mentions", "2"]) == 0
    out = capsys.readouterr().out
    assert "precision" in out
    assert "F1" in out


def test_missing_command_exits():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_scale_exits():
    with pytest.raises(SystemExit):
        main(["table1", "--scale", "galactic"])


def test_probe(capsys):
    assert main(["probe", "--entities", "120", "--queries", "400"]) == 0
    out = capsys.readouterr().out
    assert "harvested" in out
    assert "queries issued" in out
