"""Tests for the command-line interface."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.cli import main


TINY = ["--scale", "tiny", "--traffic-entities", "2000",
        "--traffic-events", "20000", "--traffic-cookies", "4000"]


@pytest.fixture(autouse=True)
def _isolated_cache():
    """Restore the global artifact cache around every CLI invocation.

    ``main()`` configures the process-wide cache exactly like the real
    CLI would — fine in a short-lived process, but an in-process test
    must not leak its cache (or lack of one) into later test files.
    """
    from repro.perf import active_cache, configure_cache

    previous = active_cache()
    yield
    configure_cache(previous)


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Books" in out and "Restaurants" in out


def test_spread(capsys):
    assert main(["spread", "banks", "phone", *TINY]) == 0
    out = capsys.readouterr().out
    assert "banks phones" in out
    assert "sites needed for 90% coverage" in out


def test_spread_csv(tmp_path, capsys):
    assert main(["spread", "banks", "phone", "--csv", str(tmp_path), *TINY]) == 0
    assert (tmp_path / "spread_banks_phone.csv").exists()


def test_figure3(capsys):
    assert main(["figure", "3", *TINY]) == 0
    assert "books isbns" in capsys.readouterr().out


def test_figure5(capsys):
    assert main(["figure", "5", *TINY]) == 0
    assert "max greedy improvement" in capsys.readouterr().out


def test_figure8(capsys):
    assert main(["figure", "8", *TINY]) == 0
    out = capsys.readouterr().out
    assert "VA(n)/VA(0)" in out
    assert "imdb" in out and "yelp" in out


def test_figure_out_of_range(capsys):
    assert main(["figure", "12", *TINY]) == 2


def test_discover(capsys):
    assert main(["discover", *TINY]) == 0
    out = capsys.readouterr().out
    assert "perfect expansion" in out
    assert "budgeted expansion" in out


def test_crawl(capsys):
    assert main(["crawl", "--pages", "400", *TINY]) == 0
    out = capsys.readouterr().out
    assert "greedy_oracle" in out
    assert "largest_first" in out


def test_evolve(capsys):
    assert main(["evolve", "--epochs", "3", "--budget", "10", *TINY]) == 0
    out = capsys.readouterr().out
    assert "staleness" in out.lower()
    assert "largest_first" in out


def test_resolve(capsys):
    assert main(["resolve", "--entities", "80", "--mentions", "2"]) == 0
    out = capsys.readouterr().out
    assert "precision" in out
    assert "F1" in out


def test_missing_command_exits():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_scale_exits():
    with pytest.raises(SystemExit):
        main(["table1", "--scale", "galactic"])


def test_probe(capsys):
    assert main(["probe", "--entities", "120", "--queries", "400"]) == 0
    out = capsys.readouterr().out
    assert "harvested" in out
    assert "queries issued" in out


# ---------------------------------------------------------------------------
# journal-gc, bench --history, serve-bench
# ---------------------------------------------------------------------------


def test_journal_gc_cli(tmp_path, capsys):
    from repro.resilience import JOURNAL_FORMAT

    now = time.time()  # reprolint: disable=RNG004  (file aging only)
    for index in range(3):
        path = tmp_path / f"run-{index}.jsonl"
        path.write_text(
            json.dumps({"format": JOURNAL_FORMAT, "run_id": f"run-{index}"})
            + "\n"
        )
        stamp = now - 7200 - index * 60  # run-0 newest, all past the grace
        os.utime(path, (stamp, stamp))
    assert main(
        ["journal-gc", "--journal-dir", str(tmp_path), "--keep", "1"]
    ) == 0
    out = capsys.readouterr().out
    assert "removed 2, kept 1" in out
    assert "removed run-1" in out and "removed run-2" in out
    assert (tmp_path / "run-0.jsonl").is_file()


def test_journal_gc_cli_rejects_bad_knobs(tmp_path, capsys):
    assert main(
        ["journal-gc", "--journal-dir", str(tmp_path), "--keep", "-1"]
    ) == 2
    assert "keep" in capsys.readouterr().err


def test_bench_history_cli(tmp_path, capsys):
    (tmp_path / "BENCH_PR4.json").write_text(
        json.dumps(
            {
                "benchmark": "serve latency/throughput",
                "throughput_rps": 100.0,
                "latency_ms": {"p50_ms": 1.0, "p95_ms": 2.0, "p99_ms": 3.0},
            }
        )
    )
    doc = tmp_path / "performance.md"
    assert main(
        ["bench", "--history", "--root", str(tmp_path), "--doc", str(doc)]
    ) == 0
    out = capsys.readouterr().out
    assert "100.0 req/s" in out
    assert doc.is_file() and "100.0 req/s" in doc.read_text()


def test_bench_without_history_flag_exits(capsys):
    assert main(["bench"]) == 2
    assert "--history" in capsys.readouterr().err


@pytest.fixture(scope="module")
def serve_artifacts(tmp_path_factory):
    """A run directory holding a manifest trimmed to one pair, one site."""
    from repro.pipeline.config import ExperimentConfig
    from repro.pipeline.runall import write_manifest

    root = tmp_path_factory.mktemp("serve-artifacts")
    config = ExperimentConfig(scale="tiny", seed=0).scaled_down(400)
    path = write_manifest(root, config, ["table1.txt"])
    payload = json.loads(path.read_text())
    payload["spread_pairs"] = [["restaurants", "phone"]]
    payload["traffic_sites"] = ["imdb"]
    path.write_text(json.dumps(payload))
    return root


def test_serve_bench_dry_run_is_deterministic(serve_artifacts, capsys):
    argv = [
        "serve-bench", str(serve_artifacts),
        "--seed", "7", "--clients", "2", "--requests", "30",
        "--dry-run", "--no-cache",
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "request stream sha256:" in first
    assert main(argv) == 0
    second = capsys.readouterr().out
    sha = [line for line in first.splitlines() if "sha256" in line]
    assert sha == [line for line in second.splitlines() if "sha256" in line]


def test_serve_bench_self_hosted_run(serve_artifacts, tmp_path, capsys):
    report = tmp_path / "BENCH_TEST.json"
    assert main(
        [
            "serve-bench", str(serve_artifacts),
            "--seed", "7", "--clients", "2", "--requests", "20",
            "--report", str(report), "--no-cache",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "20 requests" in out
    payload = json.loads(report.read_text())
    assert payload["statuses"] == {"200": 20}
    assert payload["throughput_rps"] > 0
    assert payload["server_metrics"]["requests_total"] >= 20


def test_serve_bench_missing_manifest(tmp_path, capsys):
    assert main(
        ["serve-bench", str(tmp_path / "nope"), "--dry-run", "--no-cache"]
    ) == 2
    assert "no manifest" in capsys.readouterr().err


def test_serve_bench_keep_alive_off_same_stream_sha(serve_artifacts, capsys):
    """--keep-alive off changes transport only, never the stream."""
    base = [
        "serve-bench", str(serve_artifacts),
        "--seed", "7", "--clients", "2", "--requests", "30",
        "--dry-run", "--no-cache",
    ]
    assert main(base) == 0
    pooled = capsys.readouterr().out
    assert main([*base, "--keep-alive", "off"]) == 0
    fresh = capsys.readouterr().out
    sha = [line for line in pooled.splitlines() if "sha256" in line]
    assert sha == [line for line in fresh.splitlines() if "sha256" in line]


def test_serve_bench_closed_loop_without_keep_alive(serve_artifacts, tmp_path, capsys):
    report = tmp_path / "BENCH_KA_OFF.json"
    assert main(
        [
            "serve-bench", str(serve_artifacts),
            "--seed", "7", "--clients", "2", "--requests", "20",
            "--keep-alive", "off", "--report", str(report), "--no-cache",
        ]
    ) == 0
    payload = json.loads(report.read_text())
    assert payload["statuses"] == {"200": 20}


def test_serve_bench_open_loop_sharded_run(serve_artifacts, tmp_path, capsys):
    report = tmp_path / "BENCH_OPEN.json"
    assert main(
        [
            "serve-bench", str(serve_artifacts),
            "--mode", "open", "--rate", "500", "--duration", "0.5",
            "--connections", "2", "--workers", "2", "--strategy", "router",
            "--report", str(report), "--no-cache",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "offered 500.0 req/s" in out
    payload = json.loads(report.read_text())
    assert payload["mode"] == "open"
    assert payload["statuses"] == {"200": 250}
    assert sorted(payload["per_worker"]) == ["0", "1"]
    assert sum(payload["per_worker"].values()) == 250
    assert payload["transport_errors"] == 0


def test_serve_bench_open_loop_sweep_reports_knee(serve_artifacts, tmp_path, capsys):
    report = tmp_path / "BENCH_SWEEP.json"
    assert main(
        [
            "serve-bench", str(serve_artifacts),
            "--mode", "open", "--duration", "0.4", "--connections", "2",
            "--workers", "2", "--strategy", "router",
            "--sweep", "200,400", "--p99-budget-ms", "5000",
            "--report", str(report), "--no-cache",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "knee: 400.0 req/s" in out
    payload = json.loads(report.read_text())
    assert payload["sweep"]["knee_rate_rps"] == 400.0
    assert [row["ok"] for row in payload["sweep"]["rates"]] == [True, True]
    # The headline numbers ARE the knee rung's samples (no re-run).
    assert payload["offered_rate_rps"] == 400.0
    assert payload["throughput_rps"] == (
        payload["sweep"]["knee"]["throughput_rps"]
    )
    assert payload["latency_ms"]["p99_ms"] == (
        payload["sweep"]["knee"]["p99_ms"]
    )


def test_serve_bench_open_loop_warmup_is_recorded(
    serve_artifacts, tmp_path, capsys
):
    """--warmup on replays the largest rung unmeasured, then measures."""
    report = tmp_path / "BENCH_WARM.json"
    assert main(
        [
            "serve-bench", str(serve_artifacts),
            "--mode", "open", "--rate", "400", "--duration", "0.5",
            "--connections", "2", "--workers", "2", "--strategy", "router",
            "--warmup", "on",
            "--report", str(report), "--no-cache",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "warmup: replaying 200 requests at 400 req/s" in out
    payload = json.loads(report.read_text())
    assert payload["warmup"] == {
        "rate_rps": 400.0,
        "requests": 200,
        "transport_errors": 0,
    }
    # The measured run is unchanged by the warmup pass.
    assert payload["statuses"] == {"200": 200}
    assert sum(payload["per_worker"].values()) == 200


def test_serve_bench_rejects_bad_sweep(serve_artifacts, capsys):
    assert main(
        [
            "serve-bench", str(serve_artifacts),
            "--mode", "open", "--sweep", "fast,faster", "--no-cache",
        ]
    ) == 2
    assert "sweep" in capsys.readouterr().err


def test_serve_bench_sqlite_backend_run(serve_artifacts, tmp_path, capsys):
    report = tmp_path / "BENCH_SQLITE.json"
    assert main(
        [
            "serve-bench", str(serve_artifacts),
            "--seed", "7", "--clients", "2", "--requests", "20",
            "--backend", "sqlite", "--cache-dir", str(tmp_path / "cache"),
            "--report", str(report),
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "sqlite backend" in out
    assert "server peak rss" in out
    payload = json.loads(report.read_text())
    assert payload["statuses"] == {"200": 20}
    assert payload["rss_mb"] > 0


def test_serve_bench_backend_rejects_no_cache(serve_artifacts, capsys):
    assert main(
        [
            "serve-bench", str(serve_artifacts),
            "--backend", "mmap", "--no-cache", "--dry-run",
        ]
    ) == 2
    assert "drop --no-cache" in capsys.readouterr().err


def test_serve_registry_expansion_and_run_ids(tmp_path):
    from pathlib import Path

    from repro.cli import _expand_run_paths, _run_id_of
    from repro.pipeline.config import ExperimentConfig
    from repro.pipeline.runall import MANIFEST_NAME, write_manifest

    registry = tmp_path / "registry"
    for name in ("alpha", "beta"):
        run = registry / name
        run.mkdir(parents=True)
        write_manifest(run, ExperimentConfig(scale="tiny", seed=0), [])
    (registry / "not-a-run").mkdir()

    expanded = _expand_run_paths([registry])
    assert [path.name for path in expanded] == ["alpha", "beta"]
    # A run directory with its own manifest passes through unchanged.
    assert _expand_run_paths([registry / "alpha"]) == [registry / "alpha"]
    assert _run_id_of(registry / "alpha") == "alpha"
    assert _run_id_of(registry / "alpha" / MANIFEST_NAME) == "alpha"


def test_serve_duplicate_run_ids_exit(tmp_path, capsys):
    from repro.pipeline.config import ExperimentConfig
    from repro.pipeline.runall import write_manifest

    a, b = tmp_path / "x" / "run", tmp_path / "y" / "run"
    for run in (a, b):
        run.mkdir(parents=True)
        write_manifest(run, ExperimentConfig(scale="tiny", seed=0), [])
    assert main(["serve", str(a), str(b), "--no-cache"]) == 2
    assert "duplicate run id" in capsys.readouterr().err


def test_all_compile_store_rejects_no_cache(tmp_path, capsys):
    assert main(
        ["all", str(tmp_path / "out"), "--compile-store", "--no-cache", *TINY]
    ) == 2
    assert "drop --no-cache" in capsys.readouterr().err
