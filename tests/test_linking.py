"""Tests for mention generation, blocking, and entity resolution."""

from __future__ import annotations

import pytest

from repro.entities.business import generate_listings
from repro.linking.blocking import BlockingIndex
from repro.linking.mentions import MentionGenerator
from repro.linking.resolution import EntityResolver


@pytest.fixture(scope="module")
def listings():
    return generate_listings("restaurants", 150, seed=21)


@pytest.fixture(scope="module")
def mentions(listings):
    return MentionGenerator(seed=22).corpus(listings, mentions_per_listing=2)


class TestMentionGenerator:
    def test_ground_truth_preserved(self, listings, mentions):
        ids = {listing.entity_id for listing in listings}
        assert all(m.true_entity_id in ids for m in mentions)

    def test_some_phones_missing(self, mentions):
        missing = sum(1 for m in mentions if m.phone is None)
        assert 0 < missing < len(mentions)

    def test_names_often_corrupted(self, listings):
        generator = MentionGenerator(typo_rate=1.0, seed=23)
        listing = listings[0]
        mention = generator.corrupt(listing, "x.example")
        assert mention.name != listing.name

    def test_zero_noise_preserves_name(self, listings):
        generator = MentionGenerator(
            typo_rate=0.0,
            drop_word_rate=0.0,
            abbreviate_rate=0.0,
            missing_phone_rate=0.0,
            wrong_zip_rate=0.0,
            seed=24,
        )
        mention = generator.corrupt(listings[0], "x.example")
        assert mention.name == listings[0].name
        assert mention.phone is not None
        assert mention.zip_code == listings[0].zip_code

    def test_validation(self):
        with pytest.raises(ValueError):
            MentionGenerator(typo_rate=1.5)
        generator = MentionGenerator()
        with pytest.raises(ValueError):
            generator.corpus([], mentions_per_listing=0)


class TestBlocking:
    def test_candidates_include_truth(self, listings, mentions):
        index = BlockingIndex(listings)
        hit = sum(
            1 for m in mentions if m.true_entity_id in index.candidates(m)
        )
        assert hit / len(mentions) > 0.97  # blocking recall

    def test_candidates_much_smaller_than_database(self, listings, mentions):
        index = BlockingIndex(listings)
        sizes = [len(index.candidates(m)) for m in mentions]
        assert max(sizes) < len(listings)
        assert sum(sizes) / len(sizes) < len(listings) / 2

    def test_phone_block_exact(self, listings):
        index = BlockingIndex(listings)
        generator = MentionGenerator(missing_phone_rate=0.0, seed=25)
        mention = generator.corrupt(listings[3], "x.example")
        assert listings[3].entity_id in index.candidates(mention)

    def test_block_sizes_diagnostics(self, listings):
        index = BlockingIndex(listings)
        sizes = index.block_sizes()
        assert set(sizes) == {"phone", "name_key", "locality"}
        assert sizes["phone"] == 1.0  # phones are unique

    def test_empty_listings_rejected(self):
        with pytest.raises(ValueError):
            BlockingIndex([])


class TestResolution:
    def test_high_quality_on_moderate_noise(self, listings, mentions):
        resolver = EntityResolver(listings, threshold=0.7)
        report = resolver.evaluate(mentions)
        assert report.precision > 0.95
        assert report.recall > 0.9
        assert report.f1 > 0.92
        assert report.mean_candidates < len(listings)

    def test_threshold_tradeoff(self, listings, mentions):
        strict = EntityResolver(listings, threshold=0.95).evaluate(mentions)
        lenient = EntityResolver(listings, threshold=0.55).evaluate(mentions)
        assert strict.n_linked <= lenient.n_linked
        assert strict.precision >= lenient.precision - 0.02

    def test_resolve_returns_score(self, listings):
        resolver = EntityResolver(listings, threshold=0.7)
        mention = MentionGenerator(seed=26).corrupt(listings[0], "x.example")
        entity_id, score = resolver.resolve(mention)
        assert entity_id == listings[0].entity_id
        assert score >= 0.7

    def test_unmatchable_mention_unlinked(self, listings):
        from repro.linking.mentions import Mention

        resolver = EntityResolver(listings, threshold=0.7)
        stranger = Mention(
            mention_id="mention:x",
            source_host="x.example",
            name="Zzyzx Quantum Llama Emporium",
            phone=None,
            city="Nowhere",
            state="XX",
            zip_code="00000",
            true_entity_id="restaurants:00000001",
        )
        entity_id, __ = resolver.resolve(stranger)
        assert entity_id is None

    def test_deduplicate_unlinked_groups_corefs(self, listings):
        from repro.linking.mentions import Mention

        resolver = EntityResolver(listings, threshold=0.7)
        a = Mention("m:1", "x", "Quantum Llama Grill", None, "Nowhere", "XX", "1", "e")
        b = Mention("m:2", "y", "Quantum Llama Grill", None, "Nowhere", "XX", "1", "e")
        c = Mention("m:3", "z", "Totally Other Shop", None, "Elsewhere", "YY", "2", "f")
        links = {"m:1": None, "m:2": None, "m:3": None}
        clusters = resolver.deduplicate_unlinked([a, b, c], links)
        assert ["m:1", "m:2"] in clusters
        assert ["m:3"] in clusters

    def test_validation(self, listings):
        with pytest.raises(ValueError):
            EntityResolver(listings, threshold=0.0)
        resolver = EntityResolver(listings)
        with pytest.raises(ValueError):
            resolver.evaluate([])
