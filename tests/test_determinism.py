"""Cross-process determinism guarantees.

Everything in the library must reproduce bit-for-bit from ``(scale,
seed)`` across *separate* interpreter runs — which is exactly what
Python's salted ``hash()`` would silently break.  These tests pin the
seed-derivation values (safe goldens: they depend only on CRC32, not on
numpy internals) and re-check determinism through every RNG consumer.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.incidence import BipartiteIncidence
from repro.io import load_incidence, save_incidence
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.experiments import _stream_seed
from repro.webgen.profiles import _profile_seed, get_profile


def test_profile_seed_is_process_independent():
    """CRC32-derived — these values must never change across runs."""
    profile = get_profile("restaurants", "phone")
    assert _profile_seed(profile, 0) == _profile_seed(profile, 0)
    # golden: breaking this breaks every recorded experiment
    assert _profile_seed(profile, 0) == (
        __import__("zlib").crc32(b"restaurants/phone") & 0x7FFFFFFF
    )


def test_stream_seed_is_process_independent():
    config = ExperimentConfig(seed=3)
    import zlib

    expected = (3 * 7_368_787 + zlib.crc32(b"traffic:yelp")) & 0x7FFFFFFF
    assert _stream_seed(config, "traffic:yelp") == expected


def test_different_labels_different_streams():
    config = ExperimentConfig(seed=0)
    seeds = {
        _stream_seed(config, f"spread:{domain}:phone")
        for domain in ("banks", "hotels", "schools")
    }
    assert len(seeds) == 3


@st.composite
def incidences(draw):
    n_entities = draw(st.integers(min_value=1, max_value=25))
    n_sites = draw(st.integers(min_value=0, max_value=6))
    sites = []
    multiplicities = []
    for s in range(n_sites):
        entities = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_entities - 1),
                max_size=8,
                unique=True,
            )
        )
        sites.append((f"s{s}.example", entities))
        multiplicities.append(
            draw(
                st.lists(
                    st.integers(min_value=1, max_value=9),
                    min_size=len(entities),
                    max_size=len(entities),
                )
            )
        )
    with_mult = draw(st.booleans())
    return BipartiteIncidence.from_site_lists(
        n_entities=n_entities,
        sites=sites,
        multiplicities=multiplicities if with_mult else None,
    )


@given(incidences())
@settings(max_examples=40, deadline=None)
def test_property_io_roundtrip_exact(tmp_path_factory, inc):
    """Any incidence survives the .npz roundtrip bit-for-bit."""
    directory = tmp_path_factory.mktemp("io")
    loaded = load_incidence(save_incidence(inc, directory / "x.npz"))
    assert loaded.n_entities == inc.n_entities
    assert loaded.site_hosts == inc.site_hosts
    assert np.array_equal(loaded.site_ptr, inc.site_ptr)
    assert np.array_equal(loaded.entity_idx, inc.entity_idx)
    if inc.multiplicity is None:
        assert loaded.multiplicity is None
    else:
        assert np.array_equal(loaded.multiplicity, inc.multiplicity)
