"""Tests for the domain registry (Table 1)."""

from __future__ import annotations

import pytest

from repro.entities.domains import (
    ATTRIBUTE_HOMEPAGE,
    ATTRIBUTE_ISBN,
    ATTRIBUTE_PHONE,
    ATTRIBUTE_REVIEWS,
    DOMAIN_REGISTRY,
    LOCAL_BUSINESS_DOMAINS,
    get_domain,
    table1_rows,
)


def test_registry_has_nine_domains():
    assert len(DOMAIN_REGISTRY) == 9


def test_eight_local_business_domains():
    assert len(LOCAL_BUSINESS_DOMAINS) == 8
    for key in LOCAL_BUSINESS_DOMAINS:
        assert DOMAIN_REGISTRY[key].is_local_business


def test_books_is_not_local_business():
    books = get_domain("books")
    assert not books.is_local_business
    assert books.attributes == (ATTRIBUTE_ISBN,)


def test_local_domains_have_phone_and_homepage():
    for key in LOCAL_BUSINESS_DOMAINS:
        domain = get_domain(key)
        assert domain.has_attribute(ATTRIBUTE_PHONE)
        assert domain.has_attribute(ATTRIBUTE_HOMEPAGE)


def test_only_restaurants_have_reviews():
    carriers = [
        key
        for key, domain in DOMAIN_REGISTRY.items()
        if domain.has_attribute(ATTRIBUTE_REVIEWS)
    ]
    assert carriers == ["restaurants"]


def test_get_domain_unknown_key():
    with pytest.raises(KeyError, match="unknown domain"):
        get_domain("florists")


def test_table1_matches_paper():
    rows = dict(table1_rows())
    assert rows["Books"] == "ISBN"
    assert rows["Restaurants"] == "phone, homepage, reviews"
    assert rows["Hotels & Lodging"] == "phone, homepage"
    assert len(rows) == 9


def test_category_words_present_for_name_generation():
    for domain in DOMAIN_REGISTRY.values():
        assert domain.category_words, f"{domain.key} has no category words"
