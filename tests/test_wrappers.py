"""Tests for unsupervised wrapper induction."""

from __future__ import annotations

import pytest

from repro.entities.business import generate_listings
from repro.extract.wrappers import WrapperInducer
from repro.webgen.html import PageRenderer


@pytest.fixture(scope="module")
def listings():
    return generate_listings("restaurants", 20, seed=31)


@pytest.fixture(scope="module")
def listing_page(listings):
    return PageRenderer(32).listing_page("agg.example", listings[:8])


class TestInduction:
    def test_finds_all_records(self, listing_page):
        wrapper = WrapperInducer().induce(listing_page)
        assert wrapper is not None
        assert wrapper.record_count == 8

    def test_recovers_names_and_phones(self, listings, listing_page):
        wrapper = WrapperInducer().induce(listing_page)
        names = [record.name for record in wrapper.records]
        phones = [record.phone for record in wrapper.records]
        assert names == [entry.name for entry in listings[:8]]
        assert phones == [entry.phone for entry in listings[:8]]

    def test_schema_is_tag_paths(self, listing_page):
        wrapper = WrapperInducer().induce(listing_page)
        assert any(path.endswith("/h2") for path in wrapper.field_paths)

    def test_unstructured_page_returns_none(self):
        html = "<html><body><p>just one paragraph</p></body></html>"
        assert WrapperInducer().induce(html) is None

    def test_two_records_suffice(self, listings):
        page = PageRenderer(33).listing_page("x.example", listings[:2])
        wrapper = WrapperInducer().induce(page)
        assert wrapper is not None
        assert wrapper.record_count == 2

    def test_min_repeats_threshold(self, listings):
        page = PageRenderer(34).listing_page("x.example", listings[:2])
        assert WrapperInducer(min_repeats=3).induce(page) is None

    def test_min_repeats_validation(self):
        with pytest.raises(ValueError):
            WrapperInducer(min_repeats=1)

    def test_picks_dominant_repeat(self, listings):
        # two competing repeated structures: listing blocks dominate lis
        blocks = PageRenderer(35).listing_page("x.example", listings[:6])
        noise = "<ul>" + "".join(f"<li>item {i}</li>" for i in range(3)) + "</ul>"
        page = blocks.replace("</body>", noise + "</body>")
        wrapper = WrapperInducer().induce(page)
        assert wrapper.record_count == 6  # listing blocks outweigh list items

    def test_link_page_records(self, listings):
        page = PageRenderer(36).link_page("links.example", listings)
        wrapper = WrapperInducer().induce(page)
        assert wrapper is not None
        with_homepage = [entry for entry in listings if entry.homepage]
        assert wrapper.record_count == len(with_homepage)

    def test_book_page_records(self):
        from repro.entities.books import generate_books

        books = generate_books(5, seed=37)
        page = PageRenderer(38).book_page("catalog.example", books)
        wrapper = WrapperInducer().induce(page)
        assert wrapper.record_count == 5
        assert [record.name for record in wrapper.records] == [
            book.title for book in books
        ]

    def test_malformed_html_tolerated(self):
        html = (
            "<div class='r'><h2>A</h2><p>1"
            "<div class='r'><h2>B</h2><p>2</div>"
        )
        wrapper = WrapperInducer().induce(html)
        # parser recovers enough structure to find repeats or nothing;
        # must not raise either way
        assert wrapper is None or wrapper.record_count >= 1


class TestWrapperAgainstDatabase:
    def test_induced_records_join_database(self, listings, listing_page):
        """Wrapper output joins the entity DB by phone — a full
        extraction path that never used the identifying-attribute
        shortcut."""
        from repro.entities.catalog import EntityDatabase

        database = EntityDatabase.from_listings(listings)
        wrapper = WrapperInducer().induce(listing_page)
        matched = 0
        for record in wrapper.records:
            if record.phone and database.lookup("phone", record.phone):
                matched += 1
        assert matched == wrapper.record_count
