"""Tests for traffic log generation and unique-cookie aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traffic.demandmodel import get_site_profile
from repro.traffic.logs import TrafficLog, TrafficLogGenerator, unique_cookie_demand
from repro.traffic.urls import parse_entity_url


@pytest.fixture(scope="module")
def generator():
    return TrafficLogGenerator(
        get_site_profile("yelp"), n_entities=300, n_cookies=500, seed=11
    )


def test_log_shapes(generator):
    log = generator.search_log(2000)
    assert log.n_events == 2000
    assert log.site == "yelp"
    assert log.source == "search"
    assert log.entity.min() >= 0 and log.entity.max() < 300
    assert log.cookie.min() >= 0 and log.cookie.max() < 500
    assert log.month.min() >= 0 and log.month.max() < 12


def test_browse_log_source(generator):
    assert generator.browse_log(100).source == "browse"


def test_validation():
    with pytest.raises(ValueError):
        TrafficLogGenerator(get_site_profile("yelp"), n_entities=0)
    with pytest.raises(ValueError):
        TrafficLogGenerator(get_site_profile("yelp"), n_entities=10, n_cookies=0)
    gen = TrafficLogGenerator(get_site_profile("yelp"), n_entities=10, seed=1)
    with pytest.raises(ValueError):
        gen.search_log(0)


def test_iter_urls_parse_back(generator):
    log = generator.search_log(50)
    for (url, cookie, month), entity in zip(log.iter_urls(), log.entity.tolist()):
        parsed = parse_entity_url(url)
        assert parsed is not None
        assert parsed[0] == "yelp"
        assert parsed[1] == f"business-{entity:08d}"


def test_unique_cookie_demand_browse_counts_pairs():
    log = TrafficLog(
        site="yelp",
        source="browse",
        n_entities=3,
        entity=np.array([0, 0, 0, 1]),
        cookie=np.array([5, 5, 6, 5]),
        month=np.array([0, 1, 2, 3]),
    )
    demand = unique_cookie_demand(log)
    # entity 0: cookies {5, 6} -> 2; entity 1: cookie {5} -> 1
    assert demand.tolist() == [2.0, 1.0, 0.0]


def test_unique_cookie_demand_search_counts_per_month():
    log = TrafficLog(
        site="yelp",
        source="search",
        n_entities=2,
        entity=np.array([0, 0, 0]),
        cookie=np.array([5, 5, 5]),
        month=np.array([0, 0, 3]),
    )
    demand = unique_cookie_demand(log)
    # cookie 5 visited in months 0 and 3 -> 2 monthly uniques
    assert demand.tolist() == [2.0, 0.0]


def test_parse_urls_path_matches_arrays(generator):
    log = generator.search_log(300)
    direct = unique_cookie_demand(log)
    key_to_index = {f"business-{i:08d}": i for i in range(300)}
    parsed = unique_cookie_demand(log, parse_urls=True, key_to_index=key_to_index)
    assert np.array_equal(direct, parsed)


def test_parse_urls_requires_mapping(generator):
    log = generator.search_log(10)
    with pytest.raises(ValueError):
        unique_cookie_demand(log, parse_urls=True)


def test_popular_entities_receive_more_demand(generator):
    log = generator.search_log(20000)
    demand = unique_cookie_demand(log)
    weights = generator.population.search_weights
    top = np.argsort(weights)[::-1][:30]
    bottom = np.argsort(weights)[:30]
    assert demand[top].mean() > demand[bottom].mean()


def test_deterministic_logs():
    a = TrafficLogGenerator(get_site_profile("imdb"), 100, seed=3).search_log(500)
    b = TrafficLogGenerator(get_site_profile("imdb"), 100, seed=3).search_log(500)
    assert np.array_equal(a.entity, b.entity)
    assert np.array_equal(a.cookie, b.cookie)
