"""Tests for the PERF hot-path rules and the --changed-only mode."""

from __future__ import annotations

import subprocess
import textwrap

import pytest

from repro.devtools.lint import check_source, main, staged_python_files


def _rules(source: str, select=("PERF",)):
    findings = check_source(textwrap.dedent(source), select=list(select))
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# PERF001: list membership tests inside loops
# ---------------------------------------------------------------------------


def test_perf001_flags_membership_in_list_literal_inside_loop():
    assert _rules(
        """
        def f(items):
            for item in items:
                if item in [1, 2, 3]:
                    yield item
        """
    ) == ["PERF001"]


def test_perf001_flags_membership_in_list_variable_inside_loop():
    assert _rules(
        """
        def f(items):
            allowed = [1, 2, 3]
            for item in items:
                if item not in allowed:
                    yield item
        """
    ) == ["PERF001"]


def test_perf001_ignores_membership_in_set_or_outside_loops():
    assert _rules(
        """
        def f(items):
            allowed = {1, 2, 3}
            ok = 2 in allowed
            for item in items:
                if item in allowed:
                    yield item
        """
    ) == []


# ---------------------------------------------------------------------------
# PERF002: numpy array growth inside loops
# ---------------------------------------------------------------------------


def test_perf002_flags_np_concatenate_inside_loop():
    assert _rules(
        """
        import numpy as np

        def f(chunks):
            out = np.empty(0)
            for chunk in chunks:
                out = np.concatenate([out, chunk])
            return out
        """
    ) == ["PERF002"]


def test_perf002_flags_from_import_and_append():
    assert _rules(
        """
        from numpy import append

        def f(chunks):
            out = None
            while chunks:
                out = append(out, chunks.pop())
            return out
        """
    ) == ["PERF002"]


def test_perf002_allows_single_concatenate_after_loop():
    assert _rules(
        """
        import numpy as np

        def f(chunks):
            parts = []
            for chunk in chunks:
                parts.append(chunk)
            return np.concatenate(parts)
        """
    ) == []


# ---------------------------------------------------------------------------
# PERF003: index-counting loops over arrays
# ---------------------------------------------------------------------------


def test_perf003_flags_range_len_loop():
    assert _rules(
        """
        def f(xs):
            total = 0
            for i in range(len(xs)):
                total += xs[i]
            return total
        """
    ) == ["PERF003"]


def test_perf003_flags_range_over_shape():
    assert _rules(
        """
        def f(matrix):
            for i in range(matrix.shape[0]):
                print(matrix[i])
        """
    ) == ["PERF003"]


def test_perf003_allows_direct_iteration_and_bounded_range():
    assert _rules(
        """
        def f(xs, n):
            for x in xs:
                print(x)
            for i in range(n):
                print(i)
            for i in range(0, len(xs), 2):  # explicit stride: not the pattern
                print(i)
        """
    ) == []


def test_perf_rules_respect_inline_suppression():
    assert _rules(
        """
        def f(xs):
            for i in range(len(xs)):  # reprolint: disable=PERF003
                print(xs[i])
        """
    ) == []


# ---------------------------------------------------------------------------
# --changed-only (the pre-commit hook mode)
# ---------------------------------------------------------------------------


@pytest.fixture
def scratch_repo(tmp_path):
    def git(*argv):
        subprocess.run(
            ["git", "-C", str(tmp_path), *argv],
            check=True,
            capture_output=True,
        )

    git("init", "--quiet")
    git("config", "user.email", "t@example.invalid")
    git("config", "user.name", "t")
    (tmp_path / "pyproject.toml").write_text(
        '[tool.reprolint]\nselect = ["PERF"]\n', encoding="utf-8"
    )
    return tmp_path, git


def test_changed_only_with_empty_index_is_clean(scratch_repo, capsys):
    root, __ = scratch_repo
    assert main(["--changed-only", "--root", str(root)]) == 0
    assert "0 file(s)" in capsys.readouterr().out


def test_changed_only_lints_staged_file(scratch_repo, capsys):
    root, git = scratch_repo
    bad = root / "hot.py"
    bad.write_text(
        "def f(xs):\n"
        "    for i in range(len(xs)):\n"
        "        print(xs[i])\n",
        encoding="utf-8",
    )
    git("add", "hot.py")
    assert staged_python_files(root) == [bad.relative_to(root)]
    assert main(["--changed-only", "--root", str(root)]) == 1
    out = capsys.readouterr().out
    assert "PERF003" in out
    assert "hot.py" in out


def test_changed_only_ignores_unstaged_files(scratch_repo, capsys):
    root, git = scratch_repo
    staged = root / "ok.py"
    staged.write_text(
        '"""A module with nothing to flag."""\n\n__all__ = ["X"]\n\nX = 1\n',
        encoding="utf-8",
    )
    git("add", "ok.py")
    unstaged = root / "bad.py"
    unstaged.write_text(
        "def f(xs):\n"
        "    for i in range(len(xs)):\n"
        "        print(xs[i])\n",
        encoding="utf-8",
    )
    assert main(["--changed-only", "--root", str(root)]) == 0
    assert "bad.py" not in capsys.readouterr().out


def test_changed_only_skips_files_staged_then_deleted(scratch_repo):
    root, git = scratch_repo
    ghost = root / "ghost.py"
    ghost.write_text("X = 1\n", encoding="utf-8")
    git("add", "ghost.py")
    ghost.unlink()
    assert main(["--changed-only", "--root", str(root)]) == 0


def test_changed_only_scopes_to_path_arguments(scratch_repo, capsys):
    root, git = scratch_repo
    (root / "pkg").mkdir()
    for rel in ("pkg/a.py", "b.py"):
        path = root / rel
        path.write_text(
            "def f(xs):\n"
            "    for i in range(len(xs)):\n"
            "        print(xs[i])\n",
            encoding="utf-8",
        )
        git("add", rel)
    assert main(["--changed-only", "--root", str(root), "pkg"]) == 1
    out = capsys.readouterr().out
    assert "pkg/a.py" in out
    assert "b.py" not in out.replace("pkg/a.py", "")


def test_changed_only_outside_git_repo_is_a_usage_error(tmp_path, capsys):
    (tmp_path / "pyproject.toml").write_text("[tool.reprolint]\n", encoding="utf-8")
    assert main(["--changed-only", "--root", str(tmp_path)]) == 2
    assert "git index" in capsys.readouterr().err
