"""Tests for the per-figure experiment runners (tiny scale)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pipeline.config import ExperimentConfig
from repro.pipeline.experiments import (
    TABLE2_ROWS,
    build_traffic_dataset,
    format_table2,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure9,
    run_spread,
    run_spread_via_extraction,
    run_table1,
    run_table2,
)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        scale="tiny",
        seed=3,
        traffic_entities=2000,
        traffic_events=30000,
        traffic_cookies=5000,
    )


def test_run_spread_deterministic(config):
    a = run_spread("banks", "phone", config)
    b = run_spread("banks", "phone", config)
    assert np.array_equal(a.curves.coverage, b.curves.coverage)


def test_spread_series_and_render(config):
    result = run_spread("banks", "phone", config)
    series = result.series()
    assert set(series) == {f"k={k}" for k in config.ks}
    assert "banks" in result.render()


def test_run_figure4_aggregate_below_coverage(config):
    result = run_figure4(config)
    k1 = result.spread.curves.curve(1)
    checkpoints = result.spread.curves.checkpoints
    # interpolate both at the same mid checkpoint: aggregate review share
    # lags entity coverage (the paper's Fig 4(a) vs 4(b) observation)
    mid = len(checkpoints) // 2
    assert result.aggregate_fractions[mid] < k1[mid] + 0.05
    assert "Aggregate" in result.render()


def test_run_figure5_greedy_dominates(config):
    result = run_figure5(config)
    assert np.all(result.by_greedy >= result.by_size - 1e-12)
    assert 0.0 <= result.max_improvement() <= 0.5
    assert "Greedy" in result.render()


def test_run_figure6_structure(config):
    curves = run_figure6(config)
    assert set(curves) == {"search", "browse"}
    assert set(curves["search"]) == {"imdb", "amazon", "yelp"}
    imdb = curves["search"]["imdb"]
    assert imdb.cumulative_share[-1] == pytest.approx(1.0)


def test_run_table1_contains_all_domains():
    table = run_table1()
    for name in ("Books", "Restaurants", "Home & Garden"):
        assert name in table


def test_run_table2_rows(config):
    rows = TABLE2_ROWS[:2]
    metrics = run_table2(config, rows=rows)
    assert len(metrics) == 2
    assert metrics[0].domain == "books"
    rendered = format_table2(metrics)
    assert "diameter" in rendered
    assert "books" in rendered


def test_run_figure9_panels(config):
    panels = run_figure9(config, max_removed=3)
    assert set(panels) == {"phone", "homepage", "isbn"}
    ks, fractions = panels["isbn"]["books"]
    assert ks.tolist() == [0, 1, 2, 3]
    assert np.all(np.diff(fractions) <= 1e-12)


def test_build_traffic_dataset_deterministic(config):
    a = build_traffic_dataset("yelp", config)
    b = build_traffic_dataset("yelp", config)
    assert np.array_equal(a.search_demand, b.search_demand)
    assert np.array_equal(a.reviews, b.reviews)
    with pytest.raises(ValueError):
        a.demand("toolbar")


def test_run_spread_via_extraction_close_to_truth(config):
    result, truth = run_spread_via_extraction("banks", "phone", config)
    assert result.incidence.n_edges == truth.n_edges
    # coverage curves computed on extracted data match truth closely
    assert result.curves.final_coverage(1) > 0.9
