"""Unit and property tests for the identifier algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.entities.ids import (
    PHONE_FORMATS,
    canonical_host,
    canonical_url,
    format_isbn13,
    format_phone,
    host_of_url,
    is_valid_isbn10,
    is_valid_isbn13,
    is_valid_nanp_phone,
    isbn10_check_digit,
    isbn10_to_isbn13,
    isbn13_check_digit,
    isbn13_to_isbn10,
    normalize_isbn,
    normalize_phone,
)

# -- ISBN ---------------------------------------------------------------------


class TestIsbnChecksums:
    def test_known_isbn10_check_digit(self):
        # 0-306-40615-2 is the canonical Wikipedia example.
        assert isbn10_check_digit("030640615") == "2"

    def test_known_isbn13_check_digit(self):
        assert isbn13_check_digit("978030640615") == "7"

    def test_isbn10_check_digit_can_be_x(self):
        # Body chosen so the weighted sum mod 11 leaves 10.
        found_x = any(
            isbn10_check_digit(f"{i:09d}") == "X" for i in range(100)
        )
        assert found_x

    def test_check_digit_rejects_bad_length(self):
        with pytest.raises(ValueError):
            isbn10_check_digit("12345")
        with pytest.raises(ValueError):
            isbn13_check_digit("12345")

    def test_check_digit_rejects_non_digits(self):
        with pytest.raises(ValueError):
            isbn10_check_digit("12345678X")

    def test_valid_isbn10(self):
        assert is_valid_isbn10("0306406152")
        assert is_valid_isbn10("0-306-40615-2")
        assert not is_valid_isbn10("0306406153")

    def test_valid_isbn13(self):
        assert is_valid_isbn13("9780306406157")
        assert is_valid_isbn13("978-0-306-40615-7")
        assert not is_valid_isbn13("9780306406150")

    def test_wrong_lengths_are_invalid(self):
        assert not is_valid_isbn10("030640615")
        assert not is_valid_isbn13("978030640615")

    def test_conversion_roundtrip_known(self):
        assert isbn10_to_isbn13("0306406152") == "9780306406157"
        assert isbn13_to_isbn10("9780306406157") == "0306406152"

    def test_conversion_rejects_invalid(self):
        with pytest.raises(ValueError):
            isbn10_to_isbn13("0306406153")
        with pytest.raises(ValueError):
            isbn13_to_isbn10("9790306406157")  # 979 prefix has no ISBN-10

    def test_normalize_isbn_accepts_both_forms(self):
        assert normalize_isbn("0306406152") == "9780306406157"
        assert normalize_isbn("978-0-306-40615-7") == "9780306406157"

    def test_normalize_isbn_rejects_garbage(self):
        with pytest.raises(ValueError):
            normalize_isbn("not-an-isbn")

    def test_format_isbn13(self):
        assert format_isbn13("9780306406157") == "978-0-3064-0615-7"
        assert format_isbn13("9780306406157", hyphenate=False) == "9780306406157"
        with pytest.raises(ValueError):
            format_isbn13("9780306406150")

    @given(st.integers(min_value=0, max_value=999_999_999))
    def test_property_isbn10_roundtrip(self, body_int):
        """Any 9-digit body + its check digit is valid and roundtrips."""
        body = f"{body_int:09d}"
        isbn10 = body + isbn10_check_digit(body)
        assert is_valid_isbn10(isbn10)
        isbn13 = isbn10_to_isbn13(isbn10)
        assert is_valid_isbn13(isbn13)
        assert isbn13_to_isbn10(isbn13) == isbn10
        assert normalize_isbn(isbn10) == isbn13

    @given(st.integers(min_value=0, max_value=999_999_999))
    def test_property_single_digit_corruption_detected(self, body_int):
        """ISBN-13 checksums catch every single-digit substitution."""
        body = f"978{body_int:09d}"
        isbn13 = body + isbn13_check_digit(body)
        for position in range(13):
            original = isbn13[position]
            replacement = "5" if original != "5" else "6"
            corrupted = isbn13[:position] + replacement + isbn13[position + 1:]
            assert not is_valid_isbn13(corrupted)


# -- phones --------------------------------------------------------------------


class TestPhones:
    def test_valid_nanp(self):
        assert is_valid_nanp_phone("4155550123")

    def test_invalid_prefixes(self):
        assert not is_valid_nanp_phone("0155550123")  # area starts with 0
        assert not is_valid_nanp_phone("1155550123")  # area starts with 1
        assert not is_valid_nanp_phone("4150550123")  # exchange starts with 0
        assert not is_valid_nanp_phone("4151550123")  # exchange starts with 1

    def test_n11_area_codes_rejected(self):
        assert not is_valid_nanp_phone("9115550123")
        assert not is_valid_nanp_phone("4115550123")

    def test_wrong_length(self):
        assert not is_valid_nanp_phone("415555012")
        assert not is_valid_nanp_phone("41555501234")

    def test_normalize_strips_formatting(self):
        assert normalize_phone("(415) 555-0123") == "4155550123"
        assert normalize_phone("415.555.0123") == "4155550123"
        assert normalize_phone("+1-415-555-0123") == "4155550123"
        assert normalize_phone("1 415 555 0123") == "4155550123"

    def test_normalize_rejects_invalid(self):
        with pytest.raises(ValueError):
            normalize_phone("011-555-0123")
        with pytest.raises(ValueError):
            normalize_phone("12345")

    def test_format_phone_all_styles_normalize_back(self):
        digits = "4155550123"
        for style in range(len(PHONE_FORMATS)):
            rendered = format_phone(digits, style=style)
            assert normalize_phone(rendered) == digits

    def test_format_phone_rejects_invalid(self):
        with pytest.raises(ValueError):
            format_phone("0155550123")

    @given(
        st.integers(min_value=2, max_value=9),
        st.integers(min_value=0, max_value=99),
        st.integers(min_value=2, max_value=9),
        st.integers(min_value=0, max_value=99),
        st.integers(min_value=0, max_value=9999),
        st.integers(min_value=0, max_value=len(PHONE_FORMATS) - 1),
    )
    def test_property_format_normalize_roundtrip(
        self, a1, a23, e1, e23, sub, style
    ):
        """Every valid number survives every format/normalize roundtrip."""
        digits = f"{a1}{a23:02d}{e1}{e23:02d}{sub:04d}"
        if not is_valid_nanp_phone(digits):
            return  # N11 area codes; out of scope for the roundtrip
        assert normalize_phone(format_phone(digits, style=style)) == digits


# -- URLs ------------------------------------------------------------------------


class TestUrls:
    def test_canonical_host(self):
        assert canonical_host("WWW.Example.COM") == "example.com"
        assert canonical_host("example.com:8080") == "example.com"
        assert canonical_host("example.com.") == "example.com"

    def test_canonical_url_unifies_variants(self):
        variants = [
            "http://www.example.com/shop/",
            "https://example.com/shop",
            "HTTP://WWW.EXAMPLE.COM/shop",
            "example.com/shop/",
        ]
        canonical = {canonical_url(v) for v in variants}
        assert canonical == {"example.com/shop"}

    def test_canonical_url_keeps_query(self):
        assert canonical_url("http://a.com/p?x=1") == "a.com/p?x=1"

    def test_canonical_url_drops_fragment(self):
        assert canonical_url("http://a.com/p#frag") == "a.com/p"

    def test_host_of_url(self):
        assert host_of_url("https://www.yelp.com/biz/x") == "yelp.com"
        assert host_of_url("yelp.com/biz/x") == "yelp.com"
