"""Tests for the extraction evaluation harness."""

from __future__ import annotations

import pytest

from repro.core.incidence import BipartiteIncidence
from repro.extract.evaluation import (
    evaluate_extraction,
    per_site_recall,
)


def truth_incidence():
    return BipartiteIncidence.from_site_lists(
        n_entities=6,
        sites=[("a.example", [0, 1, 2]), ("b.example", [2, 3])],
    )


def test_perfect_extraction():
    truth = truth_incidence()
    score = evaluate_extraction(truth, truth)
    assert score.edge_precision == 1.0
    assert score.edge_recall == 1.0
    assert score.edge_f1 == 1.0
    assert score.entity_f1 == 1.0
    assert score.is_lossless()


def test_missing_edges_lower_recall():
    truth = truth_incidence()
    partial = BipartiteIncidence.from_site_lists(
        n_entities=6, sites=[("a.example", [0, 1])]
    )
    score = evaluate_extraction(partial, truth)
    assert score.edge_precision == 1.0
    assert score.edge_recall == pytest.approx(2 / 5)
    assert score.entity_recall == pytest.approx(2 / 4)
    assert not score.is_lossless()


def test_spurious_edges_lower_precision():
    truth = truth_incidence()
    noisy = BipartiteIncidence.from_site_lists(
        n_entities=6,
        sites=[("a.example", [0, 1, 2, 5]), ("b.example", [2, 3])],
    )
    score = evaluate_extraction(noisy, truth)
    assert score.edge_recall == 1.0
    assert score.edge_precision == pytest.approx(5 / 6)


def test_empty_extraction():
    truth = truth_incidence()
    empty = BipartiteIncidence.from_site_lists(n_entities=6, sites=[])
    score = evaluate_extraction(empty, truth)
    assert score.edge_precision == 0.0
    assert score.edge_recall == 0.0
    assert score.edge_f1 == 0.0


def test_mismatched_databases_rejected():
    truth = truth_incidence()
    other = BipartiteIncidence.from_site_lists(n_entities=9, sites=[])
    with pytest.raises(ValueError):
        evaluate_extraction(other, truth)
    with pytest.raises(ValueError):
        per_site_recall(other, truth)


def test_per_site_recall():
    truth = truth_incidence()
    partial = BipartiteIncidence.from_site_lists(
        n_entities=6,
        sites=[("a.example", [0, 1]), ("c.example", [4])],
    )
    recalls = per_site_recall(partial, truth)
    assert recalls["a.example"] == pytest.approx(2 / 3)
    assert recalls["b.example"] == 0.0
    assert "c.example" not in recalls  # not a truth site


def test_end_to_end_pipeline_score(restaurant_db):
    """Full pipeline scores as lossless for the phone attribute."""
    from repro.extract.runner import ExtractionRunner
    from repro.webgen.corpus import CorpusBuilder

    incidence = BipartiteIncidence.from_site_lists(
        n_entities=len(restaurant_db),
        sites=[("x.example", list(range(20))), ("y.example", [5, 6, 7])],
        entity_ids=restaurant_db.entity_ids,
    )
    corpus = CorpusBuilder(restaurant_db, "phone", seed=1).build(incidence)
    extracted = ExtractionRunner(restaurant_db, "phone").run(corpus.cache)
    score = evaluate_extraction(extracted, corpus.truth)
    assert score.is_lossless()
