"""repro journal-gc: retention, protection, and the in-flight grace window."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.resilience import JOURNAL_FORMAT, gc_journals
from repro.resilience.gc import DEFAULT_GRACE_SECONDS


def make_journal(directory, run_id: str, age_seconds: float, now: float) -> None:
    """Write a minimal valid journal aged ``age_seconds`` before ``now``."""
    path = directory / f"{run_id}.jsonl"
    header = {"format": JOURNAL_FORMAT, "run_id": run_id}
    path.write_text(json.dumps(header) + "\n")
    stamp = now - age_seconds
    os.utime(path, (stamp, stamp))


@pytest.fixture()
def now() -> float:
    # Ages file mtimes relative to the present; never feeds an artifact.
    return time.time()  # reprolint: disable=RNG004


def test_keep_n_most_recent(tmp_path, now):
    for i in range(6):
        make_journal(tmp_path, f"run-{i}", age_seconds=7200 + i * 60, now=now)
    result = gc_journals(tmp_path, keep=2, now=now)
    # run-0 is newest (smallest age); the two newest survive.
    assert result.kept == ("run-0", "run-1")
    assert result.removed == ("run-2", "run-3", "run-4", "run-5")
    survivors = {p.stem for p in tmp_path.glob("*.jsonl")}
    assert survivors == {"run-0", "run-1"}


def test_max_age_trumps_keep(tmp_path, now):
    make_journal(tmp_path, "young", age_seconds=7200, now=now)
    make_journal(tmp_path, "old", age_seconds=30 * 86400, now=now)
    result = gc_journals(tmp_path, keep=10, max_age_days=7, now=now)
    assert result.removed == ("old",)
    assert result.kept == ("young",)


def test_protected_run_ids_survive(tmp_path, now):
    for i in range(4):
        make_journal(tmp_path, f"run-{i}", age_seconds=7200 + i * 60, now=now)
    result = gc_journals(tmp_path, keep=0, protect=("run-3",), now=now)
    assert "run-3" in result.protected
    assert "run-3" not in result.removed
    assert (tmp_path / "run-3.jsonl").is_file()


def test_fresh_journals_presumed_in_flight(tmp_path, now):
    """A journal touched within the grace window is never reaped.

    Resumable runs atomically rewrite their journal on every task
    completion, so an in-flight ``--resume`` target always has a fresh
    mtime — this is the run-id-free safety interlock.
    """
    make_journal(tmp_path, "live", age_seconds=5.0, now=now)
    make_journal(tmp_path, "stale", age_seconds=2 * DEFAULT_GRACE_SECONDS, now=now)
    result = gc_journals(tmp_path, keep=0, now=now)
    assert result.protected == ("live",)
    assert result.removed == ("stale",)
    assert (tmp_path / "live.jsonl").is_file()


def test_non_journal_files_never_touched(tmp_path, now):
    (tmp_path / "notes.jsonl").write_text("not json at all\n")
    (tmp_path / "other.jsonl").write_text(
        json.dumps({"format": "something-else"}) + "\n"
    )
    (tmp_path / "tarball.tar").write_bytes(b"\x00")
    for name in ("notes.jsonl", "other.jsonl", "tarball.tar"):
        stamp = now - 400 * 86400
        os.utime(tmp_path / name, (stamp, stamp))
    result = gc_journals(tmp_path, keep=0, max_age_days=0, now=now)
    assert result.removed == ()
    assert sorted(p.name for p in tmp_path.iterdir()) == [
        "notes.jsonl", "other.jsonl", "tarball.tar"
    ]


def test_missing_directory_is_a_noop(tmp_path):
    result = gc_journals(tmp_path / "never-created")
    assert result.removed == ()
    assert result.kept == ()
    assert "removed 0" in result.summary()


def test_validation(tmp_path):
    with pytest.raises(ValueError):
        gc_journals(tmp_path, keep=-1)
    with pytest.raises(ValueError):
        gc_journals(tmp_path, max_age_days=-0.5)


def test_real_journal_is_recognized_and_reaped(tmp_path, now):
    """GC works against journals the resilience layer actually writes."""
    from repro.resilience.journal import RunJournal

    journal = RunJournal(tmp_path, "real-run", config_fingerprint="abc")
    journal.record("table1", artifacts=("table1.txt",), seconds=0.1)
    path = tmp_path / "real-run.jsonl"
    assert path.is_file()
    stamp = now - 2 * DEFAULT_GRACE_SECONDS
    os.utime(path, (stamp, stamp))
    result = gc_journals(tmp_path, keep=0, now=now)
    assert result.removed == ("real-run",)
    assert not path.exists()
