"""Tests for the record-linkage string comparators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.linking.similarity import (
    jaro,
    jaro_winkler,
    mention_listing_score,
    name_similarity,
    normalize_name,
    token_jaccard,
)


class TestJaro:
    def test_identity(self):
        assert jaro("martha", "martha") == 1.0

    def test_known_value(self):
        # the canonical record-linkage example
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-4)

    def test_disjoint(self):
        assert jaro("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro("", "abc") == 0.0
        assert jaro("", "") == 1.0

    def test_symmetry(self):
        assert jaro("dwayne", "duane") == jaro("duane", "dwayne")

    @given(st.text(alphabet="abcdef", max_size=12), st.text(alphabet="abcdef", max_size=12))
    @settings(max_examples=100)
    def test_property_bounds_and_symmetry(self, a, b):
        value = jaro(a, b)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(jaro(b, a))


class TestJaroWinkler:
    def test_prefix_boost(self):
        assert jaro_winkler("martha", "marhta") > jaro("martha", "marhta")

    def test_no_boost_without_prefix(self):
        assert jaro_winkler("abcd", "xbcd") == pytest.approx(jaro("abcd", "xbcd"))

    def test_identity(self):
        assert jaro_winkler("same", "same") == 1.0

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            jaro_winkler("a", "b", prefix_scale=0.5)

    @given(st.text(alphabet="abcdef", max_size=10), st.text(alphabet="abcdef", max_size=10))
    @settings(max_examples=100)
    def test_property_dominates_jaro(self, a, b):
        assert jaro_winkler(a, b) >= jaro(a, b) - 1e-12


class TestTokensAndNames:
    def test_token_jaccard(self):
        assert token_jaccard("golden grill", "grill golden") == 1.0
        assert token_jaccard("golden grill", "golden spoon") == pytest.approx(1 / 3)
        assert token_jaccard("", "") == 1.0

    def test_normalize_name(self):
        assert normalize_name("Joe's Grill & Co.") == "joes grill and company"
        assert normalize_name("Main St Rest") == "main street restaurant"

    def test_name_similarity_handles_reordering(self):
        assert name_similarity("Golden Grill Restaurant", "Restaurant Golden Grill") == 1.0

    def test_name_similarity_handles_abbreviation(self):
        assert name_similarity("Walker's Rest", "Walker's Restaurant") > 0.9

    def test_name_similarity_distinct_businesses(self):
        assert name_similarity("Blue Lotus Spa", "Iron Horse Tavern") < 0.6

    def test_empty_name(self):
        assert name_similarity("", "anything") == 0.0


class TestCombinedScore:
    def test_phone_match_dominates(self):
        score = mention_listing_score(
            "X", "Completely Different", False, False, phone_match=True
        )
        assert score >= 0.2  # full phone weight

    def test_phone_mismatch_penalizes(self):
        with_match = mention_listing_score("Same Name", "Same Name", True, True, True)
        with_mismatch = mention_listing_score(
            "Same Name", "Same Name", True, True, False
        )
        assert with_mismatch < with_match

    def test_missing_phone_reweights_name(self):
        score = mention_listing_score("Same Name", "Same Name", True, True, None)
        assert score == pytest.approx(1.0)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            mention_listing_score("a", "b", True, True, True, name_weight=0.9)

    def test_perfect_everything(self):
        assert mention_listing_score("A B", "A B", True, True, True) == pytest.approx(1.0)
