"""Tests for corpus and database persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.entities.books import generate_books
from repro.entities.catalog import EntityDatabase
from repro.io import load_database, load_incidence, save_database, save_incidence
from repro.webgen.assignment import attach_review_multiplicity
from repro.webgen.profiles import get_profile


def test_incidence_roundtrip(tmp_path, tiny_incidence):
    path = save_incidence(tiny_incidence, tmp_path / "tiny")
    assert path.suffix == ".npz"
    loaded = load_incidence(path)
    assert loaded.n_entities == tiny_incidence.n_entities
    assert loaded.site_hosts == tiny_incidence.site_hosts
    assert np.array_equal(loaded.site_ptr, tiny_incidence.site_ptr)
    assert np.array_equal(loaded.entity_idx, tiny_incidence.entity_idx)
    assert loaded.multiplicity is None


def test_incidence_roundtrip_with_multiplicity(tmp_path):
    incidence = get_profile("restaurants", "phone").generate("tiny", seed=1)
    incidence = attach_review_multiplicity(incidence, rng=2)
    path = save_incidence(incidence, tmp_path / "with_mult.npz")
    loaded = load_incidence(path)
    assert np.array_equal(loaded.multiplicity, incidence.multiplicity)
    assert loaded.total_pages() == incidence.total_pages()


def test_incidence_roundtrip_with_entity_ids(tmp_path, restaurant_db):
    from repro.core.incidence import BipartiteIncidence

    incidence = BipartiteIncidence.from_site_lists(
        n_entities=len(restaurant_db),
        sites=[("a.example", [0, 5])],
        entity_ids=restaurant_db.entity_ids,
    )
    loaded = load_incidence(save_incidence(incidence, tmp_path / "ids"))
    assert loaded.entity_ids == restaurant_db.entity_ids


def test_database_roundtrip_listings(tmp_path, restaurant_db):
    path = save_database(restaurant_db, tmp_path / "restaurants.jsonl")
    loaded = load_database(path)
    assert len(loaded) == len(restaurant_db)
    assert loaded.domain.key == "restaurants"
    original = restaurant_db.get(restaurant_db.entity_ids[0])
    restored = loaded.get(restaurant_db.entity_ids[0])
    assert restored.keys == dict(original.keys)
    assert restored.payload == original.payload


def test_database_roundtrip_books(tmp_path):
    database = EntityDatabase.from_books(generate_books(25, seed=4))
    loaded = load_database(save_database(database, tmp_path / "books.jsonl"))
    assert len(loaded) == 25
    assert loaded.get(loaded.entity_ids[3]).payload.isbn13 == (
        database.get(database.entity_ids[3]).payload.isbn13
    )


def test_database_rejects_foreign_file(tmp_path):
    path = tmp_path / "not_a_db.jsonl"
    path.write_text('{"something": "else"}\n')
    with pytest.raises(ValueError, match="not a repro entity database"):
        load_database(path)


def test_lookup_still_works_after_roundtrip(tmp_path, restaurant_db):
    loaded = load_database(save_database(restaurant_db, tmp_path / "db.jsonl"))
    listing = restaurant_db.get(restaurant_db.entity_ids[7]).payload
    assert loaded.lookup("phone", listing.phone) == listing.entity_id
